package bigraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a bipartite edge list in the KONECT-compatible
// format used by the paper's datasets: one "v u" pair per line (1-based or
// 0-based, auto-detected per file by presence of a 0 id), '%' or '#'
// comment lines, arbitrary whitespace. Left and right ids live in
// independent id spaces.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	var b Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type pair struct{ v, u int64 }
	var pairs []pair
	minID := int64(1 << 62)
	line := 0
	declared := false // a WriteEdgeList header fixes sizes and 0-based ids
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || txt[0] == '%' || txt[0] == '#' {
			var dl, dr, de int
			if n, _ := fmt.Sscanf(txt, "%% bipartite edge list: |L|=%d |R|=%d |E|=%d", &dl, &dr, &de); n == 3 {
				b.SetSize(dl, dr)
				declared = true
			}
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bigraph: line %d: want at least 2 fields, got %q", line, txt)
		}
		v, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bigraph: line %d: bad left id: %v", line, err)
		}
		u, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bigraph: line %d: bad right id: %v", line, err)
		}
		if v < 0 || u < 0 {
			return nil, fmt.Errorf("bigraph: line %d: negative id", line)
		}
		if v < minID {
			minID = v
		}
		if u < minID {
			minID = u
		}
		pairs = append(pairs, pair{v, u})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// KONECT files are 1-based; shift down when no 0 appears. Files
	// written by WriteEdgeList declare their sizes and are always
	// 0-based.
	shift := int64(0)
	if !declared && len(pairs) > 0 && minID >= 1 {
		shift = 1
	}
	for _, p := range pairs {
		b.AddEdge(int32(p.v-shift), int32(p.u-shift))
	}
	return b.Build(), nil
}

// ReadEdgeListFile opens path and parses it with ReadEdgeList.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as 0-based "v u" lines with a header
// comment, the inverse of ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% bipartite edge list: |L|=%d |R|=%d |E|=%d\n", g.NumLeft(), g.NumRight(), g.NumEdges())
	var err error
	g.Edges(func(v, u int32) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEdgeListFile writes the graph to path via WriteEdgeList.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
