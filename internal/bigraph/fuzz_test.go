package bigraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList ensures the parser never panics and that every
// successfully parsed graph passes structural validation and round-trips
// through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 1\n2 2\n")
	f.Add("% c\n0 0\n")
	f.Add("")
	f.Add("999999999999999999999 1\n")
	f.Add("1 2 extra fields ok\n")
	f.Add("#\n\n\n3 4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v (input %q)", err, input)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("edge count changed in round trip: %d vs %d", g2.NumEdges(), g.NumEdges())
		}
	})
}
