package bigraph

import (
	"math/rand"
	"testing"
)

// buildFromSet turns an edge set into a graph sized to cover every id.
func buildFromSet(edges map[[2]int32]bool, minL, minR int) *Graph {
	var b Builder
	b.SetSize(minL, minR)
	for e, on := range edges {
		if on {
			b.AddEdge(e[0], e[1])
		}
	}
	return b.Build()
}

func sameGraph(a, b *Graph) bool {
	if a.NumLeft() != b.NumLeft() || a.NumRight() != b.NumRight() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int32(0); int(v) < a.NumLeft(); v++ {
		an, bn := a.NeighL(v), b.NeighL(v)
		if len(an) != len(bn) {
			return false
		}
		for i := range an {
			if an[i] != bn[i] {
				return false
			}
		}
	}
	return true
}

func TestApplyEditsTable(t *testing.T) {
	var b Builder
	b.SetSize(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	g := b.Build()

	t.Run("empty batch returns the same graph", func(t *testing.T) {
		ng, res, err := ApplyEdits(g, nil)
		if err != nil || ng != g || res != (EditResult{}) {
			t.Fatalf("got %v %+v %v", ng, res, err)
		}
	})
	t.Run("noop insert and delete", func(t *testing.T) {
		ng, res, err := ApplyEdits(g, []Edit{{V: 0, U: 0}, {Del: true, V: 2, U: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inserted != 0 || res.Deleted != 0 || res.Noops != 2 {
			t.Fatalf("counts: %+v", res)
		}
		if ng != g {
			t.Fatal("all-noop batch should return the original graph")
		}
	})
	t.Run("cancelling pair is a noop", func(t *testing.T) {
		ng, res, err := ApplyEdits(g, []Edit{{V: 2, U: 2}, {Del: true, V: 2, U: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inserted != 0 || res.Deleted != 0 || res.Noops != 2 {
			t.Fatalf("counts: %+v", res)
		}
		if ng != g {
			t.Fatal("cancelled batch should return the original graph")
		}
	})
	t.Run("insert grows the sides", func(t *testing.T) {
		ng, res, err := ApplyEdits(g, []Edit{{V: 5, U: 7}})
		if err != nil {
			t.Fatal(err)
		}
		if ng.NumLeft() != 6 || ng.NumRight() != 8 || !ng.HasEdge(5, 7) {
			t.Fatalf("growth wrong: %v", ng)
		}
		if res.Inserted != 1 || res.TouchedLeftMaxDeg != 1 || res.TouchedRightMaxDeg != 1 {
			t.Fatalf("counts: %+v", res)
		}
		if err := ng.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("delete and reinsert applies the last edit", func(t *testing.T) {
		ng, res, err := ApplyEdits(g, []Edit{{Del: true, V: 0, U: 0}, {V: 0, U: 0}, {Del: true, V: 1, U: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if !ng.HasEdge(0, 0) || ng.HasEdge(1, 1) {
			t.Fatal("final presence wrong")
		}
		if res.Deleted != 1 || res.Inserted != 0 || res.Noops != 2 {
			t.Fatalf("counts: %+v", res)
		}
	})
	t.Run("touched degree bounds cover both endpoints", func(t *testing.T) {
		// Deleting (0,1): left 0 has old degree 2, right 1 has old degree 2.
		_, res, err := ApplyEdits(g, []Edit{{Del: true, V: 0, U: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if res.TouchedLeftMaxDeg != 2 || res.TouchedRightMaxDeg != 2 {
			t.Fatalf("bounds: %+v", res)
		}
	})
	t.Run("negative id rejected", func(t *testing.T) {
		if _, _, err := ApplyEdits(g, []Edit{{V: -1, U: 0}}); err == nil {
			t.Fatal("want error")
		}
	})
	if err := g.Validate(); err != nil {
		t.Fatalf("base graph mutated: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("base graph mutated: %v", g)
	}
}

// TestApplyEditsRandom cross-checks ApplyEdits against replaying the
// batch onto a plain edge set and rebuilding.
func TestApplyEditsRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		edges := make(map[[2]int32]bool)
		var b Builder
		b.SetSize(12, 14)
		for i := 0; i < 40; i++ {
			v, u := int32(rng.Intn(12)), int32(rng.Intn(14))
			edges[[2]int32{v, u}] = true
		}
		for e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g := b.Build()

		// A batch mixing inserts (some of present edges), deletes (some of
		// absent edges), duplicates, and side-growing ids.
		var batch []Edit
		want := make(map[[2]int32]bool, len(edges))
		for e := range edges {
			want[e] = true
		}
		maxL, maxR := int32(g.NumLeft()), int32(g.NumRight())
		for i := 0; i < 30; i++ {
			e := Edit{
				Del: rng.Intn(3) == 0,
				V:   int32(rng.Intn(int(maxL) + 3)),
				U:   int32(rng.Intn(int(maxR) + 3)),
			}
			batch = append(batch, e)
			k := [2]int32{e.V, e.U}
			if e.Del {
				delete(want, k)
			} else {
				want[k] = true
			}
		}
		ng, res, err := ApplyEdits(g, batch)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("seed %d: invalid result: %v", seed, err)
		}
		ref := buildFromSet(want, ng.NumLeft(), ng.NumRight())
		if !sameGraph(ng, ref) {
			t.Fatalf("seed %d: merged graph %v != rebuilt %v", seed, ng, ref)
		}
		if res.Inserted+res.Deleted+res.Noops != len(batch) {
			t.Fatalf("seed %d: counts %+v do not cover batch of %d", seed, res, len(batch))
		}
		if got := ng.NumEdges() - g.NumEdges(); got != res.Inserted-res.Deleted {
			t.Fatalf("seed %d: edge delta %d != inserted-deleted %+v", seed, got, res)
		}
		// Idempotence: replaying the same effective state is all noops.
		replay := make([]Edit, 0, len(batch))
		for _, e := range batch {
			replay = append(replay, e)
		}
		ng2, _, err := ApplyEdits(ng, replay[len(replay)-1:])
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		last := replay[len(replay)-1]
		if ng.HasEdge(last.V, last.U) == !last.Del && ng2 != ng {
			t.Fatalf("seed %d: idempotent replay should be a noop", seed)
		}
	}
}
