package bigraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Graph {
	// L = {0,1,2}, R = {0,1}, edges: 0-0, 0-1, 2-1 (and a duplicate).
	var b Builder
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(0, 1) // duplicate, must coalesce
	return b.Build()
}

func TestBuildBasics(t *testing.T) {
	g := sample()
	if g.NumLeft() != 3 || g.NumRight() != 2 {
		t.Fatalf("sizes = %d,%d want 3,2", g.NumLeft(), g.NumRight())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (dedup)", g.NumEdges())
	}
	if g.DegL(0) != 2 || g.DegL(1) != 0 || g.DegL(2) != 1 {
		t.Fatalf("left degrees wrong: %d %d %d", g.DegL(0), g.DegL(1), g.DegL(2))
	}
	if g.DegR(0) != 1 || g.DegR(1) != 2 {
		t.Fatalf("right degrees wrong: %d %d", g.DegR(0), g.DegR(1))
	}
	if !g.HasEdge(0, 0) || !g.HasEdge(2, 1) || g.HasEdge(1, 0) || g.HasEdge(2, 0) {
		t.Fatal("HasEdge answers wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSetSizeKeepsIsolatedVertices(t *testing.T) {
	var b Builder
	b.SetSize(5, 7)
	b.AddEdge(0, 0)
	g := b.Build()
	if g.NumLeft() != 5 || g.NumRight() != 7 {
		t.Fatalf("sizes = %d,%d want 5,7", g.NumLeft(), g.NumRight())
	}
	if g.DegL(4) != 0 || g.DegR(6) != 0 {
		t.Fatal("isolated vertex has nonzero degree")
	}
}

func TestDensity(t *testing.T) {
	g := sample()
	want := 3.0 / 5.0
	if got := g.Density(); got != want {
		t.Fatalf("Density = %v, want %v", got, want)
	}
	var empty Builder
	if got := empty.Build().Density(); got != 0 {
		t.Fatalf("empty Density = %v, want 0", got)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := sample()
	var got [][2]int32
	g.Edges(func(v, u int32) bool {
		got = append(got, [2]int32{v, u})
		return true
	})
	want := [][2]int32{{0, 0}, {0, 1}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("Edges yielded %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges yielded %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	g.Edges(func(v, u int32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d edges", n)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// 2x3 with edges forming a path.
	g := FromEdges(2, 3, [][2]int32{{0, 0}, {0, 1}, {1, 1}, {1, 2}})
	sub, lback, rback := g.InducedSubgraph([]int32{1}, []int32{1, 2})
	if sub.NumLeft() != 1 || sub.NumRight() != 2 || sub.NumEdges() != 2 {
		t.Fatalf("induced = %v", sub)
	}
	if lback[0] != 1 || rback[0] != 1 || rback[1] != 2 {
		t.Fatal("back maps wrong")
	}
	if !sub.HasEdge(0, 0) || !sub.HasEdge(0, 1) {
		t.Fatal("induced edges wrong")
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	// 1-based KONECT-style input with comments.
	in := "% comment\n# another\n1 1\n1 2\n3 2\n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLeft() != 3 || g.NumRight() != 2 || g.NumEdges() != 3 {
		t.Fatalf("parsed %v", g)
	}
	if !g.HasEdge(0, 0) || !g.HasEdge(2, 1) {
		t.Fatal("1-based shift not applied")
	}

	// 0-based input: no shift.
	g, err = ReadEdgeList(strings.NewReader("0 0\n2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 0) || !g.HasEdge(2, 1) {
		t.Fatal("0-based ids shifted incorrectly")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 b\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges(4, 5, [][2]int32{{0, 0}, {0, 4}, {3, 2}, {2, 2}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	g.Edges(func(v, u int32) bool {
		if !g2.HasEdge(v, u) {
			t.Errorf("edge (%d,%d) lost in round trip", v, u)
		}
		return true
	})
}

// TestQuickAdjacencyMirror checks on random graphs that adjL and adjR
// describe the same edge set and degrees sum consistently.
func TestQuickAdjacencyMirror(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
		var b Builder
		b.SetSize(nl, nr)
		m := rng.Intn(60)
		for i := 0; i < m; i++ {
			b.AddEdge(int32(rng.Intn(nl)), int32(rng.Intn(nr)))
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		sumL, sumR := 0, 0
		for v := int32(0); v < int32(nl); v++ {
			sumL += g.DegL(v)
			for _, u := range g.NeighL(v) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		for u := int32(0); u < int32(nr); u++ {
			sumR += g.DegR(u)
		}
		return sumL == g.NumEdges() && sumR == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	g := FromEdges(3, 2, [][2]int32{{0, 0}, {0, 1}, {2, 1}})
	tr := g.Transpose()
	if tr.NumLeft() != 2 || tr.NumRight() != 3 {
		t.Fatalf("transpose sizes %d,%d", tr.NumLeft(), tr.NumRight())
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d", tr.NumEdges())
	}
	g.Edges(func(v, u int32) bool {
		if !tr.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) missing after transpose", u, v)
		}
		return true
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Double transpose round-trips.
	tt := tr.Transpose()
	if tt.NumLeft() != g.NumLeft() || tt.NumEdges() != g.NumEdges() {
		t.Fatal("double transpose diverged")
	}
	if tr.DegL(1) != g.DegR(1) || tr.DegR(0) != g.DegL(0) {
		t.Fatal("transposed degrees wrong")
	}
}

func TestRoundTripExactWithHeader(t *testing.T) {
	// 1-based-looking ids and isolated vertices both survive a write/read
	// cycle thanks to the declared header.
	var b Builder
	b.SetSize(6, 7)
	b.AddEdge(1, 1)
	b.AddEdge(5, 6)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumLeft() != 6 || g2.NumRight() != 7 {
		t.Fatalf("sizes lost: %v", g2)
	}
	if !g2.HasEdge(1, 1) || !g2.HasEdge(5, 6) {
		t.Fatal("ids shifted despite header")
	}
}
