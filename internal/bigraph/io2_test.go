package bigraph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"os"
)

func randomGraph(t testing.TB, nl, nr int, edges [][2]int32) *Graph {
	t.Helper()
	return FromEdges(nl, nr, edges)
}

func sampleGraph() *Graph {
	return FromEdges(4, 5, [][2]int32{
		{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4},
	})
}

func graphsEqual(a, b *Graph) bool {
	if a.NumLeft() != b.NumLeft() || a.NumRight() != b.NumRight() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int32(0); v < int32(a.NumLeft()); v++ {
		na, nb := a.NeighL(v), b.NeighL(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("MatrixMarket round trip changed the graph")
	}
}

func TestMatrixMarketAcceptsValues(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% weighted bipartite graph
3 2 3
1 1 0.5
2 2 1.25
3 1 -7
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLeft() != 3 || g.NumRight() != 2 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if !g.HasEdge(2, 0) {
		t.Fatal("missing edge from value line")
	}
}

func TestMatrixMarketRejects(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "%%NotMatrixMarket\n1 1 0\n",
		"symmetric":    "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 1\n",
		"no size":      "%%MatrixMarket matrix coordinate pattern general\n% only comments\n",
		"short size":   "%%MatrixMarket matrix coordinate pattern general\n3 3\n",
		"bad size":     "%%MatrixMarket matrix coordinate pattern general\na b c\n",
		"out of range": "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"zero id":      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
		"wrong count":  "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n",
		"bad row":      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx 1\n",
		"short entry":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	graphs := []*Graph{
		sampleGraph(),
		FromEdges(0, 0, nil),
		FromEdges(3, 3, nil), // isolated vertices only
		FromEdges(1, 1, [][2]int32{{0, 0}}),
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("graph %d: binary round trip changed the graph", i)
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := sampleGraph()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("file round trip changed the graph")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(clean); n++ {
		if _, err := ReadBinary(bytes.NewReader(clean[:n])); err == nil {
			t.Fatalf("accepted truncation to %d bytes", n)
		}
	}
	// A flipped payload byte must fail the checksum (or a structural
	// check before it).
	for i := 8; i < len(clean); i++ {
		bad := append([]byte(nil), clean...)
		bad[i] ^= 0x10
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Fatalf("accepted bit flip at offset %d", i)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), clean...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestReadBinaryFileMissing(t *testing.T) {
	_, err := ReadBinaryFile(filepath.Join(t.TempDir(), "missing.bin"))
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("want a not-exist error, got %v", err)
	}
}

// TestPayloadCRCMatchesTrailer: PayloadCRC must equal the checksum
// WriteBinary embeds, so in-memory fingerprints and snapshot trailers
// are directly comparable.
func TestPayloadCRCMatchesTrailer(t *testing.T) {
	g := sampleGraph()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	trailer := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if sum := PayloadCRC(g); sum != trailer {
		t.Fatalf("PayloadCRC = %08x, snapshot trailer = %08x", sum, trailer)
	}
	// Different content must fingerprint differently.
	other := FromEdges(4, 5, [][2]int32{{0, 0}})
	if PayloadCRC(other) == PayloadCRC(g) {
		t.Fatal("distinct graphs share a payload CRC")
	}
}
