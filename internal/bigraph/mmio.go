package bigraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a bipartite graph stored as a MatrixMarket
// coordinate file: rows are left vertices, columns right vertices, and
// each nonzero entry an edge. The "%%MatrixMarket matrix coordinate
// <field> general" header is required; pattern, integer and real fields
// are accepted (any value columns beyond the coordinates are ignored, so
// weighted matrices load as unweighted graphs). Ids are 1-based as the
// format prescribes.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("bigraph: MatrixMarket: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("bigraph: MatrixMarket: bad header %q", sc.Text())
	}
	for _, tok := range header[4:] {
		if tok == "symmetric" || tok == "skew-symmetric" || tok == "hermitian" {
			return nil, fmt.Errorf("bigraph: MatrixMarket: %s matrices are square, not bipartite; want general", tok)
		}
	}

	// Skip comments to the size line.
	var sizeLine string
	line := 1
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "%") {
			continue
		}
		sizeLine = txt
		break
	}
	if sizeLine == "" {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("bigraph: MatrixMarket: missing size line")
	}
	dims := strings.Fields(sizeLine)
	if len(dims) != 3 {
		return nil, fmt.Errorf("bigraph: MatrixMarket: line %d: size line needs rows cols nnz, got %q", line, sizeLine)
	}
	rows, err1 := strconv.Atoi(dims[0])
	cols, err2 := strconv.Atoi(dims[1])
	nnz, err3 := strconv.Atoi(dims[2])
	if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("bigraph: MatrixMarket: line %d: bad size line %q", line, sizeLine)
	}

	var b Builder
	b.SetSize(rows, cols)
	seen := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "%") {
			continue
		}
		fields := strings.Fields(txt)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bigraph: MatrixMarket: line %d: want row and col, got %q", line, txt)
		}
		i, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bigraph: MatrixMarket: line %d: bad row: %v", line, err)
		}
		j, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bigraph: MatrixMarket: line %d: bad col: %v", line, err)
		}
		if i < 1 || int(i) > rows || j < 1 || int(j) > cols {
			return nil, fmt.Errorf("bigraph: MatrixMarket: line %d: entry (%d,%d) outside %dx%d", line, i, j, rows, cols)
		}
		b.AddEdge(int32(i-1), int32(j-1))
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if seen != nnz {
		return nil, fmt.Errorf("bigraph: MatrixMarket: header declares %d entries, file has %d", nnz, seen)
	}
	return b.Build(), nil
}

// WriteMatrixMarket writes the graph as a MatrixMarket coordinate pattern
// file, the inverse of ReadMatrixMarket.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern general")
	fmt.Fprintf(bw, "%d %d %d\n", g.NumLeft(), g.NumRight(), g.NumEdges())
	var err error
	g.Edges(func(v, u int32) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", v+1, u+1)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
