// Package bigraph implements the bipartite graph substrate used throughout
// the repository: an immutable CSR (compressed sparse row) representation
// with sorted adjacency on both sides, a mutable builder, and the degree /
// neighborhood helpers (Γ, δ and their complements) from the paper's
// Section 2.
//
// Vertices on each side are identified by dense int32 ids: left vertices
// are 0..NumLeft()-1 and right vertices are 0..NumRight()-1, in two
// independent id spaces.
package bigraph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected bipartite graph G = (L ∪ R, E) in CSR
// form. Use a Builder to construct one.
type Graph struct {
	numLeft  int
	numRight int

	// CSR for the left side: neighbors (right ids) of left vertex v are
	// adjL[offL[v]:offL[v+1]], sorted ascending. Symmetrically for the
	// right side.
	offL []int64
	adjL []int32
	offR []int64
	adjR []int32
}

// NumLeft returns |L|.
func (g *Graph) NumLeft() int { return g.numLeft }

// NumRight returns |R|.
func (g *Graph) NumRight() int { return g.numRight }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.adjL) }

// DegL returns δ(v, R), the degree of left vertex v.
func (g *Graph) DegL(v int32) int { return int(g.offL[v+1] - g.offL[v]) }

// DegR returns δ(u, L), the degree of right vertex u.
func (g *Graph) DegR(u int32) int { return int(g.offR[u+1] - g.offR[u]) }

// NeighL returns Γ(v, R): the sorted right neighbors of left vertex v.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) NeighL(v int32) []int32 { return g.adjL[g.offL[v]:g.offL[v+1]] }

// NeighR returns Γ(u, L): the sorted left neighbors of right vertex u.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) NeighR(u int32) []int32 { return g.adjR[g.offR[u]:g.offR[u+1]] }

// HasEdge reports whether (v, u) ∈ E for left vertex v and right vertex u.
func (g *Graph) HasEdge(v, u int32) bool {
	a := g.NeighL(v)
	b := g.NeighR(u)
	// Binary-search the shorter list.
	if len(a) <= len(b) {
		return containsSorted(a, u)
	}
	return containsSorted(b, v)
}

func containsSorted(a []int32, x int32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}

// Density returns |E| / (|L| + |R|), the edge density used by the paper's
// synthetic experiments.
func (g *Graph) Density() float64 {
	n := g.numLeft + g.numRight
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// Edges calls fn for every edge (v, u), ordered by v then u. If fn returns
// false, iteration stops.
func (g *Graph) Edges(fn func(v, u int32) bool) {
	for v := int32(0); v < int32(g.numLeft); v++ {
		for _, u := range g.NeighL(v) {
			if !fn(v, u) {
				return
			}
		}
	}
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("bigraph{|L|=%d |R|=%d |E|=%d}", g.numLeft, g.numRight, g.NumEdges())
}

// Transpose returns the mirror graph with the left and right sides
// swapped. It shares the underlying storage with g (both are immutable),
// so the call is O(1). The left-anchored machinery run on Transpose(g)
// yields the paper's symmetric "right-anchored" variant.
func (g *Graph) Transpose() *Graph {
	return &Graph{
		numLeft:  g.numRight,
		numRight: g.numLeft,
		offL:     g.offR,
		adjL:     g.adjR,
		offR:     g.offL,
		adjR:     g.adjL,
	}
}

// Clone returns a deep copy of g whose CSR arrays are freshly allocated
// on the Go heap. Its use is promoting a graph served from mapped
// (mmap-backed) storage back to heap residency: the copy is a plain
// memcpy of the four arrays, with no re-parse.
func (g *Graph) Clone() *Graph {
	return &Graph{
		numLeft:  g.numLeft,
		numRight: g.numRight,
		offL:     append([]int64(nil), g.offL...),
		adjL:     append([]int32(nil), g.adjL...),
		offR:     append([]int64(nil), g.offR...),
		adjR:     append([]int32(nil), g.adjR...),
	}
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are coalesced. The zero value is ready to use.
type Builder struct {
	numLeft  int
	numRight int
	edges    []edge
}

type edge struct{ v, u int32 }

// SetSize reserves vertex counts so isolated vertices survive Build.
// Adding an edge beyond the declared sizes extends them automatically.
func (b *Builder) SetSize(numLeft, numRight int) {
	if numLeft > b.numLeft {
		b.numLeft = numLeft
	}
	if numRight > b.numRight {
		b.numRight = numRight
	}
}

// AddEdge records the edge (v, u) between left vertex v and right vertex u.
func (b *Builder) AddEdge(v, u int32) {
	if v < 0 || u < 0 {
		panic("bigraph: negative vertex id")
	}
	if int(v) >= b.numLeft {
		b.numLeft = int(v) + 1
	}
	if int(u) >= b.numRight {
		b.numRight = int(u) + 1
	}
	b.edges = append(b.edges, edge{v, u})
}

// NumEdgesAdded reports how many edges have been recorded so far,
// counting duplicates.
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build produces the immutable CSR graph and resets nothing; the builder
// may keep accumulating for a later Build.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].v != b.edges[j].v {
			return b.edges[i].v < b.edges[j].v
		}
		return b.edges[i].u < b.edges[j].u
	})
	// Deduplicate in place.
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			dedup = append(dedup, e)
		}
	}
	b.edges = dedup

	g := &Graph{numLeft: b.numLeft, numRight: b.numRight}
	g.offL = make([]int64, b.numLeft+1)
	g.offR = make([]int64, b.numRight+1)
	for _, e := range b.edges {
		g.offL[e.v+1]++
		g.offR[e.u+1]++
	}
	for i := 1; i <= b.numLeft; i++ {
		g.offL[i] += g.offL[i-1]
	}
	for i := 1; i <= b.numRight; i++ {
		g.offR[i] += g.offR[i-1]
	}
	g.adjL = make([]int32, len(b.edges))
	g.adjR = make([]int32, len(b.edges))
	nextL := make([]int64, b.numLeft)
	nextR := make([]int64, b.numRight)
	for _, e := range b.edges {
		g.adjL[g.offL[e.v]+nextL[e.v]] = e.u
		nextL[e.v]++
		g.adjR[g.offR[e.u]+nextR[e.u]] = e.v
		nextR[e.u]++
	}
	// adjL is filled in (v,u)-sorted order so each list is sorted; adjR is
	// filled in v-ascending order per u, also sorted. No per-list sort
	// needed.
	return g
}

// FromEdges is a convenience constructor for tests and examples.
func FromEdges(numLeft, numRight int, edges [][2]int32) *Graph {
	var b Builder
	b.SetSize(numLeft, numRight)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// InducedSubgraph returns the induced bipartite subgraph G[L' ∪ R'] with
// vertices relabeled densely (0..len-1 on each side), together with the
// id maps from new ids back to original ids.
func (g *Graph) InducedSubgraph(lset, rset []int32) (*Graph, []int32, []int32) {
	lmap := make(map[int32]int32, len(lset))
	rmap := make(map[int32]int32, len(rset))
	lback := make([]int32, len(lset))
	rback := make([]int32, len(rset))
	for i, v := range lset {
		lmap[v] = int32(i)
		lback[i] = v
	}
	for i, u := range rset {
		rmap[u] = int32(i)
		rback[i] = u
	}
	var b Builder
	b.SetSize(len(lset), len(rset))
	for _, v := range lset {
		for _, u := range g.NeighL(v) {
			if nu, ok := rmap[u]; ok {
				b.AddEdge(lmap[v], nu)
			}
		}
	}
	return b.Build(), lback, rback
}

// Validate checks internal CSR invariants; it is used by tests and after
// deserialization.
func (g *Graph) Validate() error {
	if len(g.offL) != g.numLeft+1 || len(g.offR) != g.numRight+1 {
		return fmt.Errorf("bigraph: offset array sizes wrong")
	}
	if len(g.adjL) != len(g.adjR) {
		return fmt.Errorf("bigraph: adjacency arrays disagree: %d vs %d", len(g.adjL), len(g.adjR))
	}
	for v := int32(0); v < int32(g.numLeft); v++ {
		ns := g.NeighL(v)
		for i, u := range ns {
			if u < 0 || int(u) >= g.numRight {
				return fmt.Errorf("bigraph: left %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && ns[i-1] >= u {
				return fmt.Errorf("bigraph: left %d adjacency not strictly sorted", v)
			}
		}
	}
	for u := int32(0); u < int32(g.numRight); u++ {
		ns := g.NeighR(u)
		for i, v := range ns {
			if v < 0 || int(v) >= g.numLeft {
				return fmt.Errorf("bigraph: right %d has out-of-range neighbor %d", u, v)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("bigraph: right %d adjacency not strictly sorted", u)
			}
			if !containsSorted(g.NeighL(v), u) {
				return fmt.Errorf("bigraph: edge (%d,%d) present in adjR but not adjL", v, u)
			}
		}
	}
	return nil
}
