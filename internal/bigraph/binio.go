package bigraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Binary graph format: a compact, checksummed serialization for datasets
// too large to re-parse from text on every run (gendata writes it for the
// synthetic scalability ladders of Figure 9).
//
// Layout (little-endian):
//
//	magic "KBPGRF1\n"
//	uvarint numLeft | uvarint numRight | uvarint numEdges
//	per left vertex: uvarint degree
//	per left vertex: its neighbors as uvarint deltas (first absolute+1,
//	  then gap to the previous neighbor, exploiting sorted adjacency)
//	uint32 CRC32 (IEEE) of everything after the magic
var binMagic = [8]byte{'K', 'B', 'P', 'G', 'R', 'F', '1', '\n'}

// WriteBinary serializes g.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	sum32, err := writePayload(bw, g)
	if err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], sum32)
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// writePayload writes the checksummed section of the binary format (the
// varint header, degrees and delta-coded adjacency) to w and returns its
// CRC.
func writePayload(w io.Writer, g *Graph) (uint32, error) {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(buf[:], x)
		_, err := mw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(g.NumLeft())); err != nil {
		return 0, err
	}
	if err := writeUvarint(uint64(g.NumRight())); err != nil {
		return 0, err
	}
	if err := writeUvarint(uint64(g.NumEdges())); err != nil {
		return 0, err
	}
	for v := int32(0); v < int32(g.NumLeft()); v++ {
		if err := writeUvarint(uint64(g.DegL(v))); err != nil {
			return 0, err
		}
	}
	for v := int32(0); v < int32(g.NumLeft()); v++ {
		prev := int64(-1)
		for _, u := range g.NeighL(v) {
			if err := writeUvarint(uint64(int64(u) - prev)); err != nil {
				return 0, err
			}
			prev = int64(u)
		}
	}
	return crc.Sum32(), nil
}

// PayloadCRC computes the checksum WriteBinary would embed for g without
// materializing the serialization: the graph's content fingerprint. Two
// graphs have equal PayloadCRC exactly when their snapshots are
// byte-identical, so the value recorded in a catalog manifest and the
// one computed for an in-memory graph are directly comparable.
func PayloadCRC(g *Graph) uint32 {
	sum, err := writePayload(io.Discard, g)
	if err != nil {
		// io.Discard cannot fail; a non-nil error would mean the format
		// itself is broken.
		panic("bigraph: PayloadCRC: " + err.Error())
	}
	return sum
}

// ReadBinary deserializes a graph written by WriteBinary or
// WriteBinaryV2 (the magic selects the decoder), verifying the
// checksum and CSR invariants.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("bigraph: binary: short magic: %w", err)
	}
	if m == binMagicV2 {
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("bigraph: binary v2: %w", err)
		}
		data := make([]byte, 0, 8+len(rest))
		data = append(data, m[:]...)
		return readBinaryV2(append(data, rest...))
	}
	if m != binMagic {
		return nil, fmt.Errorf("bigraph: binary: bad magic")
	}
	crc := crc32.NewIEEE()
	cr := &crcByteReader{br: br, crc: crc}

	numLeft, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("bigraph: binary: header: %w", err)
	}
	numRight, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("bigraph: binary: header: %w", err)
	}
	numEdges, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("bigraph: binary: header: %w", err)
	}
	const maxSide = 1 << 31
	if numLeft > maxSide || numRight > maxSide || numEdges > (1<<40) {
		return nil, fmt.Errorf("bigraph: binary: implausible sizes %d/%d/%d", numLeft, numRight, numEdges)
	}

	g := &Graph{numLeft: int(numLeft), numRight: int(numRight)}
	g.offL = make([]int64, numLeft+1)
	for v := uint64(0); v < numLeft; v++ {
		d, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("bigraph: binary: degree of %d: %w", v, err)
		}
		g.offL[v+1] = g.offL[v] + int64(d)
	}
	if uint64(g.offL[numLeft]) != numEdges {
		return nil, fmt.Errorf("bigraph: binary: degrees sum to %d, header says %d edges", g.offL[numLeft], numEdges)
	}
	g.adjL = make([]int32, numEdges)
	g.offR = make([]int64, numRight+1)
	for v := uint64(0); v < numLeft; v++ {
		prev := int64(-1)
		for i := g.offL[v]; i < g.offL[v+1]; i++ {
			gap, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, fmt.Errorf("bigraph: binary: adjacency of %d: %w", v, err)
			}
			u := prev + int64(gap)
			if gap == 0 || u >= int64(numRight) {
				return nil, fmt.Errorf("bigraph: binary: vertex %d has invalid neighbor %d", v, u)
			}
			g.adjL[i] = int32(u)
			g.offR[u+1]++
			prev = u
		}
	}
	var want [4]byte
	if _, err := io.ReadFull(br, want[:]); err != nil {
		return nil, fmt.Errorf("bigraph: binary: missing checksum: %w", err)
	}
	if binary.LittleEndian.Uint32(want[:]) != crc.Sum32() {
		return nil, fmt.Errorf("bigraph: binary: checksum mismatch")
	}

	// Rebuild the right-side CSR.
	for u := uint64(0); u < numRight; u++ {
		g.offR[u+1] += g.offR[u]
	}
	g.adjR = make([]int32, numEdges)
	next := make([]int64, numRight)
	for v := int32(0); v < int32(numLeft); v++ {
		for _, u := range g.NeighL(v) {
			g.adjR[g.offR[u]+next[u]] = v
			next[u]++
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("bigraph: binary: %w", err)
	}
	return g, nil
}

// WriteBinaryFile writes g to path via WriteBinary.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads a graph from path via ReadBinary.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// crcByteReader reads bytes while folding them into a CRC.
type crcByteReader struct {
	br  *bufio.Reader
	crc io.Writer
	buf [1]byte
}

func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return 0, err
	}
	c.buf[0] = b
	c.crc.Write(c.buf[:])
	return b, nil
}
