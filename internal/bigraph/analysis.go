package bigraph

import (
	"sort"

	"repro/internal/bitset"
)

// Component is one connected component, as sorted vertex id sets.
type Component struct {
	L []int32
	R []int32
}

// Size returns the vertex count of the component.
func (c Component) Size() int { return len(c.L) + len(c.R) }

// ConnectedComponents returns the connected components of g (isolated
// vertices form singleton components), largest first; ties broken by the
// smallest contained id for determinism.
func ConnectedComponents(g *Graph) []Component {
	seenL := bitset.New(g.NumLeft())
	seenR := bitset.New(g.NumRight())
	var comps []Component

	// explore runs a BFS from a seed vertex on the given side.
	explore := func(seed int32, right bool) Component {
		var c Component
		type vert struct {
			id    int32
			right bool
		}
		queue := []vert{{seed, right}}
		if right {
			seenR.Add(int(seed))
		} else {
			seenL.Add(int(seed))
		}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if x.right {
				c.R = append(c.R, x.id)
				for _, v := range g.NeighR(x.id) {
					if !seenL.Contains(int(v)) {
						seenL.Add(int(v))
						queue = append(queue, vert{v, false})
					}
				}
			} else {
				c.L = append(c.L, x.id)
				for _, u := range g.NeighL(x.id) {
					if !seenR.Contains(int(u)) {
						seenR.Add(int(u))
						queue = append(queue, vert{u, true})
					}
				}
			}
		}
		sortIDs(c.L)
		sortIDs(c.R)
		return c
	}

	for v := int32(0); v < int32(g.NumLeft()); v++ {
		if !seenL.Contains(int(v)) {
			comps = append(comps, explore(v, false))
		}
	}
	for u := int32(0); u < int32(g.NumRight()); u++ {
		if !seenR.Contains(int(u)) {
			comps = append(comps, explore(u, true))
		}
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Size() != comps[j].Size() {
			return comps[i].Size() > comps[j].Size()
		}
		return firstID(comps[i]) < firstID(comps[j])
	})
	return comps
}

func firstID(c Component) int64 {
	best := int64(1) << 62
	if len(c.L) > 0 {
		best = int64(c.L[0])
	}
	if len(c.R) > 0 && int64(c.R[0])+int64(1<<31) < best {
		// Right ids ordered after all left ids for tie-breaking.
		best = int64(c.R[0]) + int64(1<<31)
	}
	return best
}

func sortIDs(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// LargestComponent returns the induced subgraph of the largest connected
// component with the id maps back to g. An empty graph returns itself.
func LargestComponent(g *Graph) (*Graph, []int32, []int32) {
	comps := ConnectedComponents(g)
	if len(comps) == 0 {
		return g, nil, nil
	}
	return g.InducedSubgraph(comps[0].L, comps[0].R)
}

// ProjectLeft returns the left projection of g as an adjacency list:
// proj[v] lists the left vertices sharing at least minCommon common right
// neighbors with v (v excluded), sorted ascending. minCommon below 1 is
// treated as 1. The projection is how one-mode analyses (e.g. clique
// detection on co-review graphs) consume bipartite data.
func ProjectLeft(g *Graph, minCommon int) [][]int32 {
	if minCommon < 1 {
		minCommon = 1
	}
	proj := make([][]int32, g.NumLeft())
	counts := make(map[int32]int)
	for v := int32(0); v < int32(g.NumLeft()); v++ {
		clear(counts)
		for _, u := range g.NeighL(v) {
			for _, w := range g.NeighR(u) {
				if w != v {
					counts[w]++
				}
			}
		}
		for w, c := range counts {
			if c >= minCommon {
				proj[v] = append(proj[v], w)
			}
		}
		sortIDs(proj[v])
	}
	return proj
}

// ProjectRight is the mirror of ProjectLeft for the right side.
func ProjectRight(g *Graph, minCommon int) [][]int32 {
	return ProjectLeft(g.Transpose(), minCommon)
}

// DegreeHistogram returns deg -> count for the requested side (left when
// right is false). Indices run from 0 to the maximum degree.
func DegreeHistogram(g *Graph, right bool) []int64 {
	n, deg := g.NumLeft(), g.DegL
	if right {
		n, deg = g.NumRight(), g.DegR
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := deg(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int64, maxDeg+1)
	for v := 0; v < n; v++ {
		hist[deg(int32(v))]++
	}
	return hist
}

// Stats summarizes a graph's shape for dataset tables and logs.
type Stats struct {
	NumLeft, NumRight, NumEdges int
	// MaxDegL and MaxDegR are the per-side maximum degrees.
	MaxDegL, MaxDegR int
	// AvgDegL and AvgDegR are the per-side mean degrees.
	AvgDegL, AvgDegR float64
	// Density is |E| / (|L| + |R|), the paper's edge-density measure.
	Density float64
	// Components is the number of connected components.
	Components int
}

// ComputeStats gathers Stats for g.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		NumLeft:  g.NumLeft(),
		NumRight: g.NumRight(),
		NumEdges: g.NumEdges(),
		Density:  g.Density(),
	}
	for v := int32(0); v < int32(g.NumLeft()); v++ {
		if d := g.DegL(v); d > s.MaxDegL {
			s.MaxDegL = d
		}
	}
	for u := int32(0); u < int32(g.NumRight()); u++ {
		if d := g.DegR(u); d > s.MaxDegR {
			s.MaxDegR = d
		}
	}
	if g.NumLeft() > 0 {
		s.AvgDegL = float64(g.NumEdges()) / float64(g.NumLeft())
	}
	if g.NumRight() > 0 {
		s.AvgDegR = float64(g.NumEdges()) / float64(g.NumRight())
	}
	s.Components = len(ConnectedComponents(g))
	return s
}
