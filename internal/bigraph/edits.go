package bigraph

import (
	"fmt"
	"sort"
)

// Edit is one edge mutation: insert (Del false) or delete (Del true) of
// the edge between left vertex V and right vertex U. Edits against the
// current graph state are idempotent set operations — inserting a
// present edge or deleting an absent one is a no-op — which is what
// makes journal replay safe to repeat.
type Edit struct {
	Del  bool
	V, U int32
}

// EditResult summarizes one ApplyEdits call. Inserted and Deleted count
// the edits that changed the graph; Noops counts the rest (inserts of
// present edges, deletes of absent ones, and later edits in the batch
// superseded by an earlier one touching the same edge — the batch is
// applied in order, so the last edit per edge decides its presence).
//
// TouchedLeftMaxDeg and TouchedRightMaxDeg bound the incremental
// (α,β)-core maintenance: each is the maximum, over the endpoints of
// effective edits on that side, of the endpoint's degree before or
// after the batch. A core-decomposition row for a threshold strictly
// above the bound provably cannot change (see bicoreindex.Update).
type EditResult struct {
	Inserted, Deleted, Noops int
	TouchedLeftMaxDeg        int
	TouchedRightMaxDeg       int
}

// ApplyEdits returns a new immutable graph with the batch applied in
// order, leaving g untouched — the copy-on-write step behind epoch
// versioning: readers holding g keep a consistent snapshot while the
// returned graph serves the next epoch. Vertex ids beyond the current
// sides grow the graph; negative ids are rejected. The cost is
// O(|E| + |edits| log |edits|): one merge pass over the CSR arrays.
func ApplyEdits(g *Graph, edits []Edit) (*Graph, EditResult, error) {
	var res EditResult
	if len(edits) == 0 {
		return g, res, nil
	}
	numLeft, numRight := g.numLeft, g.numRight
	for _, e := range edits {
		if e.V < 0 || e.U < 0 {
			return nil, res, fmt.Errorf("bigraph: edit (%d,%d) has a negative vertex id", e.V, e.U)
		}
		if int(e.V) >= numLeft {
			numLeft = int(e.V) + 1
		}
		if int(e.U) >= numRight {
			numRight = int(e.U) + 1
		}
	}

	// Resolve the batch to one effective edit per edge: walk in order,
	// tracking each touched edge's evolving presence, so duplicate and
	// mutually cancelling edits count as no-ops instead of corrupting the
	// merge below.
	type key struct{ v, u int32 }
	has := func(v, u int32) bool {
		return int(v) < g.numLeft && int(u) < g.numRight && g.HasEdge(v, u)
	}
	present := make(map[key]bool, len(edits))
	for _, e := range edits {
		k := key{e.V, e.U}
		was, seen := present[k]
		if !seen {
			was = has(e.V, e.U)
		}
		if e.Del == !was {
			// Deleting an absent edge or inserting a present one.
			res.Noops++
			if !seen {
				present[k] = was
			}
			continue
		}
		present[k] = !e.Del
		if e.Del {
			res.Deleted++
		} else {
			res.Inserted++
		}
	}
	// Cancelled pairs (insert then delete of an absent edge, or the
	// reverse on a present one) leave the edge as it started; drop them
	// from the merge and fold the double count back into noops.
	ins := make([]Edit, 0, len(present))
	del := make([]Edit, 0)
	for k, want := range present {
		was := has(k.v, k.u)
		switch {
		case want && !was:
			ins = append(ins, Edit{V: k.v, U: k.u})
		case !want && was:
			del = append(del, Edit{Del: true, V: k.v, U: k.u})
		}
	}
	if extra := res.Inserted + res.Deleted - len(ins) - len(del); extra > 0 {
		res.Noops += extra
		// Re-derive the effective counts from the surviving edits.
		res.Inserted, res.Deleted = len(ins), len(del)
	}
	if len(ins) == 0 && len(del) == 0 {
		return g, res, nil
	}

	byLeft := func(a, b Edit) bool {
		if a.V != b.V {
			return a.V < b.V
		}
		return a.U < b.U
	}
	sort.Slice(ins, func(i, j int) bool { return byLeft(ins[i], ins[j]) })
	sort.Slice(del, func(i, j int) bool { return byLeft(del[i], del[j]) })

	ng := &Graph{numLeft: numLeft, numRight: numRight}
	ng.offL = make([]int64, numLeft+1)
	ng.offR = make([]int64, numRight+1)
	ng.adjL = make([]int32, 0, len(g.adjL)+len(ins)-len(del))

	// Merge pass per left vertex: existing neighbors minus deletions,
	// union insertions, all order-preserving (both inputs sorted).
	di, ii := 0, 0
	for v := int32(0); int(v) < numLeft; v++ {
		var old []int32
		if int(v) < g.numLeft {
			old = g.NeighL(v)
		}
		oi := 0
		for oi < len(old) || (ii < len(ins) && ins[ii].V == v) {
			// Emit pending insertions that sort before the next survivor.
			if ii < len(ins) && ins[ii].V == v && (oi >= len(old) || ins[ii].U < old[oi]) {
				ng.adjL = append(ng.adjL, ins[ii].U)
				ii++
				continue
			}
			u := old[oi]
			oi++
			if di < len(del) && del[di].V == v && del[di].U == u {
				di++
				continue
			}
			ng.adjL = append(ng.adjL, u)
		}
		ng.offL[v+1] = int64(len(ng.adjL))
	}

	// Derive the right-side CSR by counting sort over adjL — filling in
	// v-ascending order keeps every right adjacency list sorted, exactly
	// as Builder.Build does.
	for v := int32(0); int(v) < numLeft; v++ {
		for _, u := range ng.adjL[ng.offL[v]:ng.offL[v+1]] {
			ng.offR[u+1]++
		}
	}
	for u := 1; u <= numRight; u++ {
		ng.offR[u] += ng.offR[u-1]
	}
	ng.adjR = make([]int32, len(ng.adjL))
	nextR := make([]int64, numRight)
	for v := int32(0); int(v) < numLeft; v++ {
		for _, u := range ng.adjL[ng.offL[v]:ng.offL[v+1]] {
			ng.adjR[ng.offR[u]+nextR[u]] = v
			nextR[u]++
		}
	}

	// Touched-degree bounds for incremental core maintenance, over the
	// effective edits only (a fully cancelled batch leaves every row
	// intact).
	maxDeg := func(side int, deg func(*Graph, int32) int, id int32, bound *int) {
		od := 0
		if int(id) < side {
			od = deg(g, id)
		}
		nd := deg(ng, id)
		if od > *bound {
			*bound = od
		}
		if nd > *bound {
			*bound = nd
		}
	}
	degL := func(gr *Graph, v int32) int { return gr.DegL(v) }
	degR := func(gr *Graph, u int32) int { return gr.DegR(u) }
	for _, e := range append(append([]Edit(nil), ins...), del...) {
		maxDeg(g.numLeft, degL, e.V, &res.TouchedLeftMaxDeg)
		maxDeg(g.numRight, degR, e.U, &res.TouchedRightMaxDeg)
	}
	return ng, res, nil
}
