package bigraph

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchGraph() *Graph {
	rng := rand.New(rand.NewSource(3))
	var b Builder
	b.SetSize(5000, 5000)
	for i := 0; i < 50000; i++ {
		b.AddEdge(rng.Int31n(5000), rng.Int31n(5000))
	}
	return b.Build()
}

// BenchmarkIOFormats compares parse throughput of the three graph
// serializations on the same 50k-edge graph.
func BenchmarkIOFormats(b *testing.B) {
	g := benchGraph()
	var edgeList, mm, bin bytes.Buffer
	if err := WriteEdgeList(&edgeList, g); err != nil {
		b.Fatal(err)
	}
	if err := WriteMatrixMarket(&mm, g); err != nil {
		b.Fatal(err)
	}
	if err := WriteBinary(&bin, g); err != nil {
		b.Fatal(err)
	}
	b.Logf("sizes: edgelist=%dB mm=%dB binary=%dB", edgeList.Len(), mm.Len(), bin.Len())

	b.Run("ReadEdgeList", func(b *testing.B) {
		b.SetBytes(int64(edgeList.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadEdgeList(bytes.NewReader(edgeList.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ReadMatrixMarket", func(b *testing.B) {
		b.SetBytes(int64(mm.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadMatrixMarket(bytes.NewReader(mm.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ReadBinary", func(b *testing.B) {
		b.SetBytes(int64(bin.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ReadBinary(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBuilderBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	edges := make([][2]int32, 50000)
	for i := range edges {
		edges[i] = [2]int32{rng.Int31n(5000), rng.Int31n(5000)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bd Builder
		bd.SetSize(5000, 5000)
		for _, e := range edges {
			bd.AddEdge(e[0], e[1])
		}
		bd.Build()
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}
