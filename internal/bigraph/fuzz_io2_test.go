package bigraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary ensures the binary reader never panics and that any
// accepted input yields a structurally valid graph that round-trips.
func FuzzReadBinary(f *testing.F) {
	seed := func(g *Graph) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(sampleGraph()))
	f.Add(seed(FromEdges(0, 0, nil)))
	f.Add([]byte("KBPGRF1\n"))
	f.Add([]byte{})
	f.Add([]byte("garbage that is not a graph at all"))
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !graphsEqual(g, g2) {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadMatrixMarket ensures the MatrixMarket parser never panics and
// that accepted inputs validate.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 3.5\n")
	f.Add("")
	f.Add("%%MatrixMarket\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph invalid: %v (input %q)", err, input)
		}
	})
}
