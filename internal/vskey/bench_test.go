package vskey

import (
	"math/rand"
	"testing"
)

func benchSets(n, size int) [][]int32 {
	rng := rand.New(rand.NewSource(1))
	sets := make([][]int32, n)
	for i := range sets {
		seen := map[int32]bool{}
		for len(seen) < size {
			seen[rng.Int31n(1<<20)] = true
		}
		s := make([]int32, 0, size)
		for v := range seen {
			s = append(s, v)
		}
		insertionSort(s)
		sets[i] = s
	}
	return sets
}

func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	sets := benchSets(64, 20)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sets[i%len(sets)]
		buf = Encode(buf[:0], s, s)
	}
}

func BenchmarkDecode(b *testing.B) {
	sets := benchSets(64, 20)
	keys := make([][]byte, len(sets))
	for i, s := range sets {
		keys[i] = Encode(nil, s, s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
