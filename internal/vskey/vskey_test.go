package vskey

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	cases := []struct{ l, r []int32 }{
		{nil, nil},
		{[]int32{0}, nil},
		{nil, []int32{0}},
		{[]int32{0, 1, 2}, []int32{5, 1000, 1 << 20}},
		{[]int32{7}, []int32{7}},
	}
	for _, c := range cases {
		key := Encode(nil, c.l, c.r)
		l, r, err := Decode(key)
		if err != nil {
			t.Fatalf("Decode(%v,%v): %v", c.l, c.r, err)
		}
		if !eq(l, c.l) || !eq(r, c.r) {
			t.Fatalf("round trip (%v,%v) -> (%v,%v)", c.l, c.r, l, r)
		}
	}
}

func TestDistinctSolutionsDistinctKeys(t *testing.T) {
	// The classic ambiguity: ({0,1},{}) vs ({0},{1}) vs ({},{0,1}).
	a := Encode(nil, []int32{0, 1}, nil)
	b := Encode(nil, []int32{0}, []int32{1})
	c := Encode(nil, nil, []int32{0, 1})
	if bytes.Equal(a, b) || bytes.Equal(b, c) || bytes.Equal(a, c) {
		t.Fatal("distinct solutions share keys")
	}
}

func TestPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unsorted input")
		}
	}()
	Encode(nil, []int32{2, 1}, nil)
}

func TestPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate ids")
		}
	}()
	Encode(nil, []int32{1, 1}, nil)
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("Decode without separator succeeded")
	}
	// Appending varint bytes just extends the right side, so trailing-byte
	// detection is exercised with a second separator instead.
	key := Encode(nil, []int32{1}, []int32{2})
	if _, _, err := Decode(append(key, 0, 1)); err == nil {
		t.Error("Decode with a second separator succeeded")
	}
}

func TestAppendSemantics(t *testing.T) {
	prefix := []byte("prefix")
	key := Encode(prefix, []int32{3}, []int32{4})
	if !bytes.HasPrefix(key, prefix) {
		t.Fatal("Encode did not append to dst")
	}
	l, r, err := Decode(key[len(prefix):])
	if err != nil || !eq(l, []int32{3}) || !eq(r, []int32{4}) {
		t.Fatalf("decoded (%v,%v,%v)", l, r, err)
	}
}

// TestQuickRoundTripAndInjectivity round-trips random sets and checks that
// different sets get different keys.
func TestQuickRoundTripAndInjectivity(t *testing.T) {
	gen := func(rng *rand.Rand) []int32 {
		n := rng.Intn(12)
		m := map[int32]bool{}
		for len(m) < n {
			m[int32(rng.Intn(1<<16))] = true
		}
		out := make([]int32, 0, n)
		for id := range m {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l1, r1 := gen(rng), gen(rng)
		l2, r2 := gen(rng), gen(rng)
		k1 := Encode(nil, l1, r1)
		k2 := Encode(nil, l2, r2)
		dl1, dr1, err := Decode(k1)
		if err != nil || !eq(dl1, l1) || !eq(dr1, r1) {
			return false
		}
		same := eq(l1, l2) && eq(r1, r2)
		return bytes.Equal(k1, k2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
