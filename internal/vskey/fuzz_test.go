package vskey

import (
	"bytes"
	"testing"
)

// FuzzDecode ensures Decode never panics on arbitrary bytes and that any
// successfully decoded key re-encodes to the identical canonical bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(Encode(nil, []int32{0, 5, 9}, []int32{2}))
	f.Add(Encode(nil, nil, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, r, err := Decode(data)
		if err != nil {
			return
		}
		// Canonical round trip: decoded ids must be strictly ascending
		// (otherwise Encode panics) and re-encode byte-identically.
		for i := 1; i < len(l); i++ {
			if l[i] <= l[i-1] {
				t.Fatalf("decoded non-ascending left ids %v from %x", l, data)
			}
		}
		for i := 1; i < len(r); i++ {
			if r[i] <= r[i-1] {
				t.Fatalf("decoded non-ascending right ids %v from %x", r, data)
			}
		}
		if re := Encode(nil, l, r); !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data)
		}
	})
}
