// Package vskey encodes solution vertex sets into canonical byte keys.
//
// A solution (L', R') is identified by its two sorted vertex-id sets. The
// codec emits the left ids delta-encoded as uvarints, a 0x00 separator
// (safe because deltas are encoded +1), then the right ids the same way.
// Canonicality: equal solutions yield byte-equal keys, and distinct
// solutions yield distinct keys, so the keys can index the B-tree
// deduplication store.
package vskey

import (
	"encoding/binary"
	"fmt"
)

// Encode appends the canonical key of the solution (left, right) to dst
// and returns the extended slice. Both slices must be sorted ascending
// with no duplicates; Encode panics otherwise because a non-canonical key
// would corrupt deduplication.
func Encode(dst []byte, left, right []int32) []byte {
	dst = encodeSide(dst, left)
	dst = append(dst, 0)
	dst = encodeSide(dst, right)
	return dst
}

func encodeSide(dst []byte, ids []int32) []byte {
	prev := int32(-1)
	var buf [binary.MaxVarintLen64]byte
	for _, id := range ids {
		if id <= prev {
			panic(fmt.Sprintf("vskey: ids not strictly ascending: %d after %d", id, prev))
		}
		// Delta+1 is >= 1, so encoded bytes are never the 0x00 separator's
		// lone zero varint.
		n := binary.PutUvarint(buf[:], uint64(id-prev))
		dst = append(dst, buf[:n]...)
		prev = id
	}
	return dst
}

// Decode parses a key produced by Encode back into the two id sets.
func Decode(key []byte) (left, right []int32, err error) {
	left, rest, err := decodeSide(key)
	if err != nil {
		return nil, nil, err
	}
	if len(rest) == 0 || rest[0] != 0 {
		return nil, nil, fmt.Errorf("vskey: missing separator")
	}
	right, rest, err = decodeSide(rest[1:])
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("vskey: %d trailing bytes", len(rest))
	}
	return left, right, nil
}

func decodeSide(b []byte) (ids []int32, rest []byte, err error) {
	prev := int32(-1)
	for len(b) > 0 && b[0] != 0 {
		d, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("vskey: bad uvarint")
		}
		// Canonicality: deltas are at least 1 (ids strictly ascend) and
		// must use the minimal varint encoding, so that Decode accepts
		// exactly the byte strings Encode produces.
		if d == 0 {
			return nil, nil, fmt.Errorf("vskey: zero delta")
		}
		if n > 1 && d < 1<<(7*(n-1)) {
			return nil, nil, fmt.Errorf("vskey: non-minimal varint")
		}
		b = b[n:]
		id := prev + int32(d)
		if id < 0 {
			return nil, nil, fmt.Errorf("vskey: id overflow")
		}
		ids = append(ids, id)
		prev = id
	}
	return ids, b, nil
}
