package server

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
)

// clusterPair boots two kbiplexd servers joined into one cluster on
// loopback. All four listeners (two RPC, two HTTP) are bound before
// either server starts, because the static peer tables need real
// addresses up front.
func clusterPair(t *testing.T) (tss [2]*httptest.Server, srvs [2]*Server) {
	t.Helper()
	var rpc, web [2]net.Listener
	for i := 0; i < 2; i++ {
		for _, slot := range []*net.Listener{&rpc[i], &web[i]} {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			*slot = ln
		}
	}
	base := t.TempDir()
	ids := [2]string{"a", "b"}
	for i := 0; i < 2; i++ {
		j := 1 - i
		cfg := Config{Cluster: &cluster.Config{
			NodeID:   ids[i],
			Listener: rpc[i],
			HTTPAddr: web[i].Addr().String(),
			Peers: []cluster.PeerConfig{{
				ID: ids[j], RPCAddr: rpc[j].Addr().String(), HTTPAddr: web[j].Addr().String(),
			}},
			Dir:         filepath.Join(base, ids[i]),
			CallTimeout: 2 * time.Second, Retries: 1,
			Backoff: 5 * time.Millisecond, PingInterval: 25 * time.Millisecond,
		}}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = web[i]
		ts.Start()
		t.Cleanup(ts.Close)
		tss[i], srvs[i] = ts, srv
	}
	return tss, srvs
}

// graphDoc fetches /graphs/{name} info, reporting ok=false on 404.
func graphDoc(t *testing.T, ts *httptest.Server, name string) (map[string]any, bool) {
	t.Helper()
	resp := getJSON(t, ts.URL+"/graphs/"+name, nil)
	if resp.StatusCode == http.StatusNotFound {
		return nil, false
	}
	var doc map[string]any
	resp2 := getJSON(t, ts.URL+"/graphs/"+name, &doc)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /graphs/%s: status %d", name, resp2.StatusCode)
	}
	return doc, true
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterEndToEnd is the acceptance path: load on one node,
// replicate to the other, mutate, converge on epoch + payload CRC, then
// fan a sharded query out over both nodes and require the exact
// sequential solution set.
func TestClusterEndToEnd(t *testing.T) {
	tss, srvs := clusterPair(t)
	a, b := tss[0], tss[1]

	waitCond(t, "peers up", func() bool {
		return len(srvs[0].cluster.LivePeers()) == 1 && len(srvs[1].cluster.LivePeers()) == 1
	})

	loadRandomGraph(t, a, "g", 12, 12, 2, 3)
	waitCond(t, "graph replication to b", func() bool {
		_, ok := graphDoc(t, b, "g")
		return ok
	})

	// Mutate on A; B must converge to the same epoch and payload CRC —
	// the acceptance criterion for catalog replication.
	if doc, status := postMutation(t, a, "g", `{"op":"delete","l":0,"r":0}`); status != http.StatusOK || doc.Epoch == 0 {
		t.Fatalf("mutation on a: status %d, doc %+v", status, doc)
	}
	docA, _ := graphDoc(t, a, "g")
	waitCond(t, "epoch+crc convergence on b", func() bool {
		docB, ok := graphDoc(t, b, "g")
		return ok && docB["epoch"] == docA["epoch"] && docB["crc32"] == docA["crc32"]
	})
	if docA["crc32"] == float64(0) {
		t.Fatal("graph CRC is zero; convergence check is vacuous")
	}

	// The distributed query must return the sequential solution set
	// exactly. http.Get follows the placement redirect, so either node's
	// URL works regardless of which one owns the graph.
	want := collectStream(t, a.URL+"/graphs/g/enumerate?k=1")
	if len(want) == 0 {
		t.Fatal("no solutions at all (implausible)")
	}
	got := collectStream(t, a.URL+"/graphs/g/enumerate?k=1&shards=2")
	if !sameSolutions(got, want) {
		t.Fatalf("sharded cluster query: %d solutions, sequential %d", len(got), len(want))
	}

	// Both /stats sections the PR adds: dist (per-shard NodeStats) and
	// cluster (membership + peer health + replication lag).
	var stats map[string]any
	getJSON(t, a.URL+"/stats", &stats)
	if _, ok := stats["dist"]; !ok {
		t.Fatalf("/stats has no dist section after a sharded query: %v", stats)
	}
	cl, ok := stats["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no cluster section: %v", stats)
	}
	peers, _ := cl["peers"].([]any)
	if len(peers) != 1 {
		t.Fatalf("cluster section lists %d peers, want 1", len(peers))
	}
	if up, _ := peers[0].(map[string]any)["up"].(bool); !up {
		t.Fatalf("peer not up in /stats: %v", peers[0])
	}
}

// TestClusterPlacementRedirect checks that a stateless read addressed to
// the non-owner bounces to the placement owner with the node header, and
// that the owner serves it directly.
func TestClusterPlacementRedirect(t *testing.T) {
	tss, srvs := clusterPair(t)

	waitCond(t, "peers up", func() bool {
		return len(srvs[0].cluster.LivePeers()) == 1 && len(srvs[1].cluster.LivePeers()) == 1
	})
	loadRandomGraph(t, tss[0], "g", 8, 8, 2, 1)
	waitCond(t, "replication", func() bool {
		_, ok := graphDoc(t, tss[1], "g")
		return ok
	})

	ownerID := cluster.Owner([]string{"a", "b"}, "g")
	owner, other := 0, 1
	if ownerID == "b" {
		owner, other = 1, 0
	}
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	resp, err := noFollow.Get(tss[other].URL + "/graphs/g/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner answered %d, want 307", resp.StatusCode)
	}
	if node := resp.Header.Get("X-Kbiplex-Node"); node != ownerID {
		t.Fatalf("redirect names node %q, want %q", node, ownerID)
	}
	loc := resp.Header.Get("Location")
	if want := fmt.Sprintf("http://%s/graphs/g/enumerate?k=1", tss[owner].Listener.Addr()); loc != want {
		t.Fatalf("redirect location %q, want %q", loc, want)
	}

	resp, err = noFollow.Get(tss[owner].URL + "/graphs/g/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner answered %d, want 200", resp.StatusCode)
	}
}
