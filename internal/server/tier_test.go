package server

import (
	"net/http"
	"runtime"
	"strings"
	"testing"
)

// TestGraphInfoResidencyAndTierStats: with a data dir and the mmap
// storage tier, a persisted graph reports residency "mapped" from
// GET /graphs/{name}, and /stats carries the out-of-core counters for
// both the store (tier, mapped, demotions, promotions) and the jobs
// manager (spilled_jobs, spill_bytes).
func TestGraphInfoResidencyAndTierStats(t *testing.T) {
	if runtime.GOOS == "windows" || runtime.GOOS == "plan9" {
		t.Skip("no mmap on this platform")
	}
	ts := newTestServer(t, Config{DataDir: t.TempDir(), StorageTier: "mmap"})
	body := `{"name":"oc","random":{"num_left":10,"num_right":10,"density":2,"seed":4},"persist":true}`
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("persist load: status %d", resp.StatusCode)
	}

	var info struct {
		Residency string `json:"residency"`
	}
	if resp := getJSON(t, ts.URL+"/graphs/oc", &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("graph info: status %d", resp.StatusCode)
	}
	if info.Residency != "mapped" {
		t.Fatalf("mmap-tier residency %q, want mapped", info.Residency)
	}

	var st struct {
		Store map[string]any `json:"store"`
		Jobs  map[string]any `json:"jobs"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.Store["tier"] != "mmap" {
		t.Fatalf("stats tier %v, want mmap", st.Store["tier"])
	}
	for _, key := range []string{"mapped", "mapped_bytes", "demotions", "promotions"} {
		if _, ok := st.Store[key]; !ok {
			t.Fatalf("stats store section missing %q: %+v", key, st.Store)
		}
	}
	if n, ok := st.Store["mapped"].(float64); !ok || n != 1 {
		t.Fatalf("stats mapped %v, want 1", st.Store["mapped"])
	}
	for _, key := range []string{"spilled_jobs", "spill_bytes", "spill_errors"} {
		if _, ok := st.Jobs[key]; !ok {
			t.Fatalf("stats jobs section missing %q: %+v", key, st.Jobs)
		}
	}
}
