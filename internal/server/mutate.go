// The /v1 mutation surface: dynamic graphs over immutable snapshots.
//
// POST /v1/graphs/{name}/edges accepts one edge op ({"op":"insert",
// "l":0,"r":1}) or a batch ({"ops":[...]}). Each accepted batch is
// journaled through internal/mutate (write-ahead, CRC-framed, replayed
// at boot), applied copy-on-write to the graph, and advances the
// graph's epoch. Queries running against the previous epoch keep the
// engine they captured at submission — they stream a consistent
// snapshot — while new queries resolve the swapped-in engine. Cached
// results for the old payload CRC are invalidated exactly like a graph
// replace, and once the journaled delta crosses the compaction
// threshold the live graph is snapshotted through the store's
// atomic-rename path and the journal resets.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/bicoreindex"
	"repro/internal/bigraph"
	"repro/internal/mutate"
	"repro/internal/store"
)

// maxMutationOps bounds one batch; larger mutations should be a graph
// replace (POST /graphs), which rewrites the snapshot wholesale.
const maxMutationOps = 1 << 16

// edgeOpDoc is one mutation op on the wire.
type edgeOpDoc struct {
	Op string `json:"op"` // "insert" or "delete"
	L  int32  `json:"l"`
	R  int32  `json:"r"`
}

// mutateRequest is the POST /v1/graphs/{name}/edges body: exactly one
// of a single inline op (op/l/r) or a batch (ops).
type mutateRequest struct {
	Op  string      `json:"op,omitempty"`
	L   *int32      `json:"l,omitempty"`
	R   *int32      `json:"r,omitempty"`
	Ops []edgeOpDoc `json:"ops,omitempty"`
}

// mutationDoc is the mutation response: the batch's outcome and the
// graph's new identity. Epoch advances once per accepted batch (even an
// all-noop one — the batch is journaled either way); CRC32 is the new
// content fingerprint result caches key on.
type mutationDoc struct {
	Graph     string `json:"graph"`
	Epoch     uint64 `json:"epoch"`
	Applied   int    `json:"applied"`
	Noops     int    `json:"noops"`
	Inserted  int    `json:"inserted"`
	Deleted   int    `json:"deleted"`
	Compacted bool   `json:"compacted,omitempty"`
	NumLeft   int    `json:"num_left"`
	NumRight  int    `json:"num_right"`
	NumEdges  int    `json:"num_edges"`
	CRC32     uint32 `json:"crc32"`
}

// decodeMutation parses and validates the request body into an ordered
// edit batch.
func decodeMutation(w http.ResponseWriter, r *http.Request) ([]bigraph.Edit, error) {
	var req mutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding body: %w", err)
	}
	single := req.Op != "" || req.L != nil || req.R != nil
	if single == (len(req.Ops) > 0) {
		return nil, errors.New("want exactly one of a single op (op, l, r) or a batch (ops)")
	}
	docs := req.Ops
	if single {
		if req.L == nil || req.R == nil {
			return nil, errors.New("a single op needs op, l and r")
		}
		docs = []edgeOpDoc{{Op: req.Op, L: *req.L, R: *req.R}}
	}
	if len(docs) > maxMutationOps {
		return nil, fmt.Errorf("batch of %d ops exceeds the limit of %d; replace the graph instead", len(docs), maxMutationOps)
	}
	edits := make([]bigraph.Edit, len(docs))
	for i, d := range docs {
		var del bool
		switch d.Op {
		case "insert":
		case "delete":
			del = true
		default:
			return nil, fmt.Errorf("ops[%d]: op must be \"insert\" or \"delete\", got %q", i, d.Op)
		}
		if d.L < 0 || d.R < 0 {
			return nil, fmt.Errorf("ops[%d]: vertex ids must be non-negative", i)
		}
		if int(d.L) >= maxSide || int(d.R) >= maxSide {
			return nil, fmt.Errorf("ops[%d]: vertex ids must be below %d", i, maxSide)
		}
		edits[i] = bigraph.Edit{Del: del, V: d.L, U: d.R}
	}
	return edits, nil
}

// handleMutateEdges applies one mutation batch to a graph and
// replicates it to the cluster.
func (s *Server) handleMutateEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	edits, err := decodeMutation(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	doc, err := s.applyEdits(name, edits)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	s.proposeMutate(name, edits)
	writeJSON(w, http.StatusOK, doc)
}

// applyEdits journals and applies one validated edit batch to a graph —
// the single mutation path, shared by the HTTP handler above and the
// cluster's replicated-mutate applier. Edits have set semantics
// (inserting a present edge or deleting an absent one is a noop), so
// re-applying a batch is idempotent on content.
func (s *Server) applyEdits(name string, edits []bigraph.Edit) (mutationDoc, error) {
	info, ok := s.catalog.Info(name)
	if !ok {
		return mutationDoc{}, fmt.Errorf("%w: no graph %q", store.ErrNotFound, name)
	}
	// Resolve the engine up front so a cold graph hydrates (and its
	// failure surfaces) before anything is journaled.
	if _, err := s.catalog.Engine(name); err != nil {
		return mutationDoc{}, err
	}
	st, _, err := s.mut.Open(name, info.Persisted, info.CRC32)
	if err != nil {
		return mutationDoc{}, err
	}

	var doc mutationDoc
	doc.Graph = name
	epoch, needCompact, err := st.Apply(edits, func(ops []mutate.Op, epoch uint64) error {
		// Runs under the graph's mutation lock: the read of the current
		// engine, the copy-on-write merge and the catalog swap are atomic
		// with respect to concurrent writers. Readers are never blocked —
		// they either hold the old engine or resolve the new one.
		cur, err := s.catalog.Engine(name)
		if err != nil {
			return err
		}
		oldInfo, _ := s.catalog.Info(name)
		ng, res, err := bigraph.ApplyEdits(cur.Graph(), edits)
		if err != nil {
			return err
		}
		doc.Applied = res.Inserted + res.Deleted
		doc.Inserted, doc.Deleted, doc.Noops = res.Inserted, res.Deleted, res.Noops
		st.CountNoops(res.Noops)
		newInfo := oldInfo
		if ng != cur.Graph() {
			// Carry the core-decomposition index forward incrementally
			// instead of letting the next large-MBP query rebuild it.
			var idx *bicoreindex.Index
			if old := cur.CoreIndex(); old != nil {
				idx = old.Update(ng, res.TouchedLeftMaxDeg, res.TouchedRightMaxDeg)
			}
			if _, newInfo, err = s.catalog.SwapResident(name, ng, idx); err != nil {
				return err
			}
			// The old content's cached results are unreachable by key (the
			// CRC changed) — drop them now, exactly like a graph replace.
			if newInfo.CRC32 != oldInfo.CRC32 {
				s.invalidateResults(oldInfo.CRC32)
			}
		}
		doc.NumLeft, doc.NumRight, doc.NumEdges, doc.CRC32 = newInfo.NumLeft, newInfo.NumRight, newInfo.NumEdges, newInfo.CRC32
		return nil
	})
	if err != nil {
		return mutationDoc{}, err
	}
	doc.Epoch = epoch
	if needCompact {
		// Compaction is synchronous and best-effort: the batch is already
		// durable in the journal, so a failed snapshot write only defers
		// the fold to a later batch.
		if err := s.compactGraph(name, st, info.Persisted); err == nil {
			doc.Compacted = true
		}
	}
	return doc, nil
}

// compactGraph folds a graph's mutation delta into a fresh base
// snapshot through the store's temp-file + atomic-rename path, then
// resets the journal. For ephemeral graphs there is no snapshot; the
// fold just clears the delta. The epoch is unchanged — compaction
// rewrites storage, not content — and so is the payload CRC, so cached
// results stay valid.
func (s *Server) compactGraph(name string, st *mutate.State, persisted bool) error {
	return st.Compact(func() (uint32, error) {
		cur, err := s.catalog.Engine(name)
		if err != nil {
			return 0, err
		}
		if persisted {
			if _, err := s.catalog.Add(name, cur.Graph(), true); err != nil {
				return 0, err
			}
		}
		now, ok := s.catalog.Info(name)
		if !ok {
			return 0, fmt.Errorf("%w: %q", store.ErrNotFound, name)
		}
		return now.CRC32, nil
	})
}

// graphEpoch returns a graph's current mutation epoch (0 when it was
// never mutated this run and has no journal).
func (s *Server) graphEpoch(name string) uint64 {
	if st := s.mut.Lookup(name); st != nil {
		return st.Epoch()
	}
	return 0
}

// recoverMutations replays every persisted graph's journal at boot:
// the base snapshot hydrates, the LWW-resolved delta re-applies, and
// the graph resumes at the epoch it had before the restart. Per-graph
// failures go to report (when non-nil) and do not stop the sweep — a
// graph whose snapshot will not hydrate keeps failing per query, same
// as without a journal.
func (s *Server) recoverMutations(report func(name string, err error)) {
	for _, info := range s.catalog.Infos() {
		if !info.Persisted || !s.mut.HasJournal(info.Name) {
			continue
		}
		_, rec, err := s.mut.Open(info.Name, true, info.CRC32)
		if err != nil {
			if report != nil {
				report(info.Name, err)
			}
			continue
		}
		if len(rec.Edits) == 0 {
			continue
		}
		eng, err := s.catalog.Engine(info.Name)
		if err != nil {
			if report != nil {
				report(info.Name, fmt.Errorf("replaying mutation journal: %w", err))
			}
			continue
		}
		ng, _, err := bigraph.ApplyEdits(eng.Graph(), rec.Edits)
		if err == nil && ng != eng.Graph() {
			_, _, err = s.catalog.SwapResident(info.Name, ng, nil)
		}
		if err != nil && report != nil {
			report(info.Name, fmt.Errorf("replaying mutation journal: %w", err))
		}
	}
}
