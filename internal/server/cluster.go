// The cluster face of the server: how one kbiplexd joins a static
// multi-node membership (internal/cluster) and what crosses the seam in
// each direction.
//
// Outbound, the server is the cluster's GraphSource (peers executing a
// fanned-out query resolve the graph and its payload CRC here) and its
// Applier (replicated catalog records — graph puts, deletes and edge
// mutation batches — land on the same code paths the HTTP handlers
// use, so a replicated op and a local op are indistinguishable to the
// catalog). Inbound, the HTTP handlers propose every local catalog
// change to the op log, route sharded iTraversal queries through the
// exec.Remote runner when live peers exist, and 307-redirect misplaced
// stateless graph reads to the rendezvous owner's HTTP address with an
// X-Kbiplex-Node header naming it.
package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"

	kbiplex "repro"
	"repro/internal/bigraph"
	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/store"
)

// headerNode names the placement owner of a redirected graph request so
// clients (and humans with curl -v) can see where they were sent.
const headerNode = "X-Kbiplex-Node"

// clusterHooks adapts the Server to the cluster package's GraphSource
// and Applier seams. Applier methods reuse the handlers' own apply
// paths, which are idempotent per record the way replication requires:
// a put replaces wholesale, a delete ignores missing graphs, and edge
// mutations have set semantics.
type clusterHooks struct{ s *Server }

// ClusterGraph implements cluster.GraphSource: resolve the (possibly
// cold) engine and the catalog's content fingerprint for a fanned-out
// query.
func (h clusterHooks) ClusterGraph(name string) (*bigraph.Graph, uint32, error) {
	eng, err := h.s.catalog.Engine(name)
	if err != nil {
		return nil, 0, err
	}
	info, ok := h.s.catalog.Info(name)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", store.ErrNotFound, name)
	}
	return eng.Graph(), info.CRC32, nil
}

// ApplyGraphPut implements cluster.Applier: decode the replicated
// snapshot and register it exactly like a local load. Persistence
// degrades to memory-only on nodes without a data directory — the
// replicated op log itself re-delivers the graph after a restart.
func (h clusterHooks) ApplyGraphPut(name string, persist bool, snapshot []byte) error {
	g, err := kbiplex.ReadBinaryGraph(bytes.NewReader(snapshot))
	if err != nil {
		return fmt.Errorf("decoding replicated snapshot for %q: %w", name, err)
	}
	if persist && h.s.cfg.DataDir == "" {
		persist = false
	}
	return h.s.addGraph(name, g, persist)
}

// ApplyGraphDelete implements cluster.Applier. A name this node never
// had (or already dropped) is a successful no-op, so re-applied records
// converge.
func (h clusterHooks) ApplyGraphDelete(name string) error {
	info, had := h.s.catalog.Info(name)
	ok, err := h.s.catalog.Delete(name)
	if err != nil {
		return err
	}
	if ok && had {
		h.s.invalidateResults(info.CRC32)
	}
	h.s.mut.Drop(name)
	return nil
}

// ApplyMutate implements cluster.Applier: one replicated edge batch
// runs through the same journaled copy-on-write path as a local POST
// /v1/graphs/{name}/edges. A batch for a graph this node has not seen
// yet (its put rode a different origin's log and has not arrived)
// errors, which parks the origin's replication cursor until the pull
// path retries after the put lands.
func (h clusterHooks) ApplyMutate(name string, ops []cluster.EdgeOp) error {
	edits := make([]bigraph.Edit, len(ops))
	for i, op := range ops {
		edits[i] = bigraph.Edit{Del: op.Del, V: op.L, U: op.R}
	}
	_, err := h.s.applyEdits(name, edits)
	return err
}

// startCluster joins the configured cluster, wiring this server in as
// the node's graph source and op-log applier. Called from New after the
// catalog and journals are recovered, so replicated records arriving
// immediately apply against the restored state.
func (s *Server) startCluster(cc cluster.Config) error {
	hooks := clusterHooks{s}
	cc.Source = hooks
	cc.Applier = hooks
	node, err := cluster.Start(cc)
	if err != nil {
		return err
	}
	s.cluster = node
	return nil
}

// propose best-effort replicates one local catalog change. The change
// is already applied and durable locally; an op-log append failure (a
// full disk under the cluster directory) means peers will not learn of
// it, which surfaces as replication lag in /stats rather than as a
// failure of the request that caused it.
func (s *Server) propose(kind cluster.OpKind, name string, persist bool, payload []byte) {
	if s.cluster == nil {
		return
	}
	s.cluster.Propose(kind, name, persist, payload)
}

// proposePut snapshots g and replicates it as a put record.
func (s *Server) proposePut(name string, g *kbiplex.Graph, persist bool) {
	if s.cluster == nil {
		return
	}
	var buf bytes.Buffer
	if err := kbiplex.WriteBinaryGraph(&buf, g); err != nil {
		return
	}
	s.propose(cluster.OpPut, name, persist, buf.Bytes())
}

// proposeMutate replicates one applied edge batch as a mutate record.
func (s *Server) proposeMutate(name string, edits []bigraph.Edit) {
	if s.cluster == nil {
		return
	}
	ops := make([]cluster.EdgeOp, len(edits))
	for i, e := range edits {
		ops[i] = cluster.EdgeOp{Del: e.Del, L: e.V, R: e.U}
	}
	s.propose(cluster.OpMutate, name, false, cluster.EncodeEdgeOps(ops))
}

// redirectToOwner reroutes a misplaced stateless graph request to its
// rendezvous owner with a 307 (method and body preserved), naming the
// owner in X-Kbiplex-Node. Requests are served locally when this node
// owns the graph or the owner is unreachable — replication gives every
// node the full catalog, so locality is a preference, not a
// requirement.
func (s *Server) redirectToOwner(w http.ResponseWriter, r *http.Request, name string) bool {
	if s.cluster == nil {
		return false
	}
	id, httpAddr, self := s.cluster.OwnerOf(name)
	if self || httpAddr == "" || !s.cluster.PeerUp(id) {
		return false
	}
	u := *r.URL
	u.Scheme = "http"
	u.Host = httpAddr
	w.Header().Set(headerNode, id)
	http.Redirect(w, r, u.String(), http.StatusTemporaryRedirect)
	return true
}

// clusterQuery runs one sharded iTraversal query across the live
// membership through the exec.Remote runner, ok=false when the query
// should fall back to a local runner (no cluster, no live peers, or an
// unfingerprinted graph).
func (s *Server) clusterQuery(ctx context.Context, eng *kbiplex.Engine, name string, q kbiplex.Query, emit func(kbiplex.Solution) bool) (kbiplex.Stats, bool, error) {
	if s.cluster == nil || q.Algorithm != kbiplex.ITraversal || len(s.cluster.LivePeers()) == 0 {
		return kbiplex.Stats{}, false, nil
	}
	info, ok := s.catalog.Info(name)
	if !ok || info.CRC32 == 0 {
		return kbiplex.Stats{}, false, nil
	}
	st, err := eng.EnumerateRunner(ctx, q.Options(), exec.Remote{Exec: cluster.QueryExec{
		Node: s.cluster, Graph: name, CRC: info.CRC32, Shards: q.Shards,
	}}, emit)
	return st, true, err
}

// recordDist folds one sharded (in-process or cluster) run's per-shard
// stats into the /stats "dist" section: cumulative message and combiner
// counters plus the most recent per-shard breakdown.
func (s *Server) recordDist(st kbiplex.Stats) {
	if len(st.Shards) == 0 {
		return
	}
	var combined int64
	for _, sh := range st.Shards {
		combined += sh.Combined
	}
	s.distMu.Lock()
	s.distQueries++
	s.distMessages += st.Messages
	s.distCombined += combined
	s.distLast = st.Shards
	s.distMu.Unlock()
}

// distSection snapshots the accumulated sharded-run counters for
// /stats; ok=false when no sharded query has run yet.
func (s *Server) distSection() (map[string]any, bool) {
	s.distMu.Lock()
	defer s.distMu.Unlock()
	if s.distQueries == 0 {
		return nil, false
	}
	return map[string]any{
		"queries":     s.distQueries,
		"messages":    s.distMessages,
		"combined":    s.distCombined,
		"last_shards": s.distLast,
	}, true
}
