package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	kbiplex "repro"
)

// submitJobResp posts a query document and returns the raw response
// (closed) plus the decoded job doc (zero when the response had no
// body, e.g. 304).
func submitJobResp(t *testing.T, ts *httptest.Server, graph, query string, header http.Header) (*http.Response, jobDoc) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/graphs/"+graph+"/jobs", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc jobDoc
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, doc
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// statsDoc fetches /stats into a generic document.
func statsDoc(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	var doc map[string]any
	getJSON(t, ts.URL+"/stats", &doc)
	return doc
}

// cacheStat reads one numeric field of the /stats result_cache section.
func cacheStat(t *testing.T, ts *httptest.Server, field string) float64 {
	t.Helper()
	doc := statsDoc(t, ts)
	section, ok := doc["result_cache"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no result_cache section: %v", doc)
	}
	v, ok := section[field].(float64)
	if !ok {
		t.Fatalf("result_cache.%s missing: %v", field, section)
	}
	return v
}

// engineQueries reads the engine's query counter off the per-graph doc.
func engineQueries(t *testing.T, ts *httptest.Server, graph string) float64 {
	t.Helper()
	var doc map[string]any
	getJSON(t, ts.URL+"/graphs/"+graph, &doc)
	q, _ := doc["queries"].(float64)
	return q
}

// TestJobCacheHit: the second identical submission is served from the
// cache — job born done, X-Kbiplex-Cache: hit, an ETag, and zero
// additional engine work.
func TestJobCacheHit(t *testing.T) {
	ts, _ := newTestServerPair(t, Config{})
	loadRandomGraph(t, ts, "g", 14, 14, 2.5, 7)

	resp1, doc1 := submitJobResp(t, ts, "g", `{"k":1}`, nil)
	if got := resp1.Header.Get(headerCache); got != "miss" {
		t.Fatalf("first submit %s = %q, want miss", headerCache, got)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("first submit carried no ETag")
	}
	want, trailer := readResults(t, ts, doc1.ID, 0)
	if !trailer.Done {
		t.Fatalf("first job did not finish cleanly: %+v", trailer)
	}
	waitFor(t, "cache admission", func() bool { return cacheStat(t, ts, "admitted") >= 1 })
	queriesBefore := engineQueries(t, ts, "g")

	resp2, doc2 := submitJobResp(t, ts, "g", `{"k":1}`, nil)
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("repeat submit %s = %q, want hit", headerCache, got)
	}
	if resp2.Header.Get("ETag") != etag {
		t.Fatalf("ETag changed across identical submissions: %q vs %q", resp2.Header.Get("ETag"), etag)
	}
	if doc2.State != "done" {
		t.Fatalf("cached job born in state %q, want done", doc2.State)
	}
	got, trailer2 := readResults(t, ts, doc2.ID, 0)
	if !trailer2.Done || len(got) != len(want) {
		t.Fatalf("cached job served %d solutions (done=%v), want %d", len(got), trailer2.Done, len(want))
	}
	// Zero planner/traversal work: the engine's query counter must not
	// have moved for the cached submission.
	if after := engineQueries(t, ts, "g"); after != queriesBefore {
		t.Fatalf("cached hit ran the engine: queries %v -> %v", queriesBefore, after)
	}
	if hits := cacheStat(t, ts, "hits"); hits < 1 {
		t.Fatalf("result_cache.hits = %v, want >= 1", hits)
	}
}

// TestJobSubmitIfNoneMatch: revalidation with the entry's ETag
// round-trips as 304 without creating a job.
func TestJobSubmitIfNoneMatch(t *testing.T) {
	ts, _ := newTestServerPair(t, Config{})
	loadRandomGraph(t, ts, "g", 12, 12, 2, 5)

	resp1, doc1 := submitJobResp(t, ts, "g", `{"k":1}`, nil)
	etag := resp1.Header.Get("ETag")
	readResults(t, ts, doc1.ID, 0)
	waitFor(t, "cache admission", func() bool { return cacheStat(t, ts, "admitted") >= 1 })

	resp, _ := submitJobResp(t, ts, "g", `{"k":1}`, http.Header{"If-None-Match": {etag}})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get(headerCache); got != "hit" {
		t.Fatalf("304 %s = %q, want hit", headerCache, got)
	}
	// A stale ETag (different query) must not revalidate.
	resp2, doc2 := submitJobResp(t, ts, "g", `{"k":2}`, http.Header{"If-None-Match": {etag}})
	if resp2.StatusCode != http.StatusAccepted || doc2.ID == "" {
		t.Fatalf("mismatched If-None-Match did not run the query: %d", resp2.StatusCode)
	}
}

// TestCacheKeyURLvsJSONForms: the satellite table test — the URL-form
// and JSON-form spellings of one query must canonicalize to
// byte-identical cache keys.
func TestCacheKeyURLvsJSONForms(t *testing.T) {
	cases := []struct {
		name string
		url  string
		body string
		same bool
	}{
		{"defaults", "k=1", `{"k":1}`, true},
		{"k expands per side", "k=2", `{"k_left":2,"k_right":2}`, true},
		{"algorithm case folds", "algorithm=ITRAVERSAL&k=1", `{"algorithm":"iTraversal","k":1}`, true},
		{"workers one is sequential", "k=1&workers=1", `{"k":1}`, true},
		{"deadline excluded", "k=1&deadline=30s", `{"k":1}`, true},
		{"max_results carried", "k=1&max_results=100", `{"k":1,"max_results":100}`, true},
		{"shards distinguish", "k=1&shards=4", `{"k":1}`, false},
		{"k distinguishes", "k=2", `{"k":1}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ru := httptest.NewRequest(http.MethodGet, "/graphs/g/enumerate?"+tc.url, nil)
			qu, err := queryFromURL(ru)
			if err != nil {
				t.Fatalf("queryFromURL(%q): %v", tc.url, err)
			}
			rj := httptest.NewRequest(http.MethodPost, "/v1/graphs/g/jobs", strings.NewReader(tc.body))
			qj, err := decodeQuery(httptest.NewRecorder(), rj)
			if err != nil {
				t.Fatalf("decodeQuery(%q): %v", tc.body, err)
			}
			ku, kj := qu.CacheKey(), qj.CacheKey()
			if (ku == kj) != tc.same {
				t.Fatalf("URL key %q vs JSON key %q, want same=%v", ku, kj, tc.same)
			}
		})
	}
}

// TestGraphReplaceNeverServesStale: re-POSTing different content under
// the same name must invalidate the old entries — the repeat query is a
// miss and returns the new graph's results.
func TestGraphReplaceNeverServesStale(t *testing.T) {
	ts, _ := newTestServerPair(t, Config{})
	loadRandomGraph(t, ts, "g", 12, 12, 2, 1)

	_, doc1 := submitJobResp(t, ts, "g", `{"k":1}`, nil)
	old, _ := readResults(t, ts, doc1.ID, 0)
	waitFor(t, "cache admission", func() bool { return cacheStat(t, ts, "admitted") >= 1 })

	// Same name, different content. The repeat query must re-run (the
	// old content's key no longer matches) — asserted before any other
	// graph with the new content can populate the cache.
	loadRandomGraph(t, ts, "g", 16, 16, 3, 99)
	resp, doc := submitJobResp(t, ts, "g", `{"k":1}`, nil)
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Fatalf("post-replace submit %s = %q, want miss", headerCache, got)
	}
	got, _ := readResults(t, ts, doc.ID, 0)

	// Ground truth for the new content, computed under a fresh name.
	loadRandomGraph(t, ts, "fresh", 16, 16, 3, 99)
	_, docFresh := submitJobResp(t, ts, "fresh", `{"k":1}`, nil)
	want, _ := readResults(t, ts, docFresh.ID, 0)
	if len(want) == len(old) {
		t.Skip("replacement graph happens to have the same solution count; pick different seeds")
	}
	if len(got) != len(want) {
		t.Fatalf("post-replace query returned %d solutions, want %d (stale would be %d)", len(got), len(want), len(old))
	}
	if inv := cacheStat(t, ts, "invalidated"); inv < 1 {
		t.Fatalf("result_cache.invalidated = %v, want >= 1", inv)
	}
	// DELETE also invalidates.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/fresh", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %v", resp.StatusCode, err)
	}
	waitFor(t, "delete invalidation", func() bool { return cacheStat(t, ts, "invalidated") >= 2 })
}

// TestLegacyEnumerateCache: the unversioned streaming endpoint serves
// repeats from cache with the hit header and honors If-None-Match.
func TestLegacyEnumerateCache(t *testing.T) {
	ts, _ := newTestServerPair(t, Config{})
	loadRandomGraph(t, ts, "g", 14, 14, 2.5, 11)
	url := ts.URL + "/graphs/g/enumerate?k=1"

	resp1, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body1, _ := io.ReadAll(resp1.Body)
	resp1.Body.Close()
	if got := resp1.Header.Get(headerCache); got != "miss" {
		t.Fatalf("first enumerate %s = %q, want miss", headerCache, got)
	}
	etag := resp1.Header.Get("ETag")
	waitFor(t, "cache admission", func() bool { return cacheStat(t, ts, "admitted") >= 1 })
	queriesBefore := engineQueries(t, ts, "g")

	resp2, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("repeat enumerate %s = %q, want hit", headerCache, got)
	}
	if c1, c2 := strings.Count(string(body1), "\n"), strings.Count(string(body2), "\n"); c1 != c2 {
		t.Fatalf("cached stream has %d lines, fresh had %d", c2, c1)
	}
	if after := engineQueries(t, ts, "g"); after != queriesBefore {
		t.Fatalf("cached enumerate ran the engine: queries %v -> %v", queriesBefore, after)
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional enumerate status = %d, want 304", resp3.StatusCode)
	}
}

// TestNoStoreHeaders: volatile endpoints must carry Cache-Control:
// no-store so intermediaries never replay job state or counters.
func TestNoStoreHeaders(t *testing.T) {
	ts, _ := newTestServerPair(t, Config{})
	loadRandomGraph(t, ts, "g", 10, 10, 2, 3)
	doc := submitJob(t, ts, "g", `{"k":1}`)

	for _, path := range []string{"/stats", "/v1/jobs", "/v1/jobs/" + doc.ID} {
		resp := getJSON(t, ts.URL+path, nil)
		if got := resp.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, got)
		}
	}
}

// TestResultCachePersistAcrossRestart: with persistence on, a restart
// serves the pre-restart hot query from the replayed log — before the
// graph is even hydrated.
func TestResultCachePersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, ResultCachePersist: true}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	body := `{"name":"g","persist":true,"random":{"num_left":14,"num_right":14,"density":2.5,"seed":21}}`
	resp, err := http.Post(ts1.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("loading graph: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	_, doc := submitJobResp(t, ts1, "g", `{"k":1}`, nil)
	want, trailer := readResults(t, ts1, doc.ID, 0)
	if !trailer.Done {
		t.Fatalf("job did not finish: %+v", trailer)
	}
	ts1.Close()
	if err := srv1.Close(); err != nil { // waits for workers → admission + log flush
		t.Fatal(err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	resp2, doc2 := submitJobResp(t, ts2, "g", `{"k":1}`, nil)
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("post-restart submit %s = %q, want hit", headerCache, got)
	}
	if doc2.State != "done" {
		t.Fatalf("post-restart cached job state %q, want done", doc2.State)
	}
	got, _ := readResults(t, ts2, doc2.ID, 0)
	if len(got) != len(want) {
		t.Fatalf("post-restart cache served %d solutions, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("solution %d differs after restart: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestResultCacheDisabled: a negative budget turns the cache off —
// repeats re-run, no cache headers, no /stats section.
func TestResultCacheDisabled(t *testing.T) {
	ts, _ := newTestServerPair(t, Config{ResultCacheBytes: -1})
	loadRandomGraph(t, ts, "g", 10, 10, 2, 3)
	resp, doc := submitJobResp(t, ts, "g", `{"k":1}`, nil)
	if h := resp.Header.Get(headerCache); h != "" {
		t.Fatalf("disabled cache still sets %s=%q", headerCache, h)
	}
	readResults(t, ts, doc.ID, 0)
	resp2, _ := submitJobResp(t, ts, "g", `{"k":1}`, nil)
	if h := resp2.Header.Get(headerCache); h != "" {
		t.Fatalf("disabled cache hit on repeat: %s=%q", headerCache, h)
	}
	if _, ok := statsDoc(t, ts)["result_cache"]; ok {
		t.Fatal("/stats exposes result_cache with the cache disabled")
	}
}

var _ = kbiplex.Query{} // keep the import stable across edits
