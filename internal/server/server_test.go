package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	kbiplex "repro"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	ts, _ := newTestServerPair(t, cfg)
	return ts
}

// newTestServerPair also returns the Server for tests that assert on
// catalog or engine state directly.
func newTestServerPair(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func loadRandomGraph(t *testing.T, ts *httptest.Server, name string, nl, nr int, density float64, seed int64) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"random":{"num_left":%d,"num_right":%d,"density":%g,"seed":%d}}`,
		name, nl, nr, density, seed)
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("loading graph: status %d: %s", resp.StatusCode, buf.String())
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	var got map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &got)
	if resp.StatusCode != http.StatusOK || got["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, got)
	}
}

// TestEnumerateRoundTrip loads a graph over HTTP, streams an enumeration
// and checks the NDJSON against the in-process API on the same seed.
func TestEnumerateRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)

	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var sols []kbiplex.Solution
	var summary summaryLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			solutionLine
			summaryLine
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done || line.Error != "" {
			summary = line.summaryLine
			continue
		}
		sols = append(sols, kbiplex.Solution{L: line.L, R: line.R})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !summary.Done || summary.Error != "" {
		t.Fatalf("stream did not finish cleanly: %+v", summary)
	}
	if len(sols) != len(want) || summary.Solutions != int64(len(want)) {
		t.Fatalf("streamed %d solutions (summary %d), want %d", len(sols), summary.Solutions, len(want))
	}
	for _, s := range sols {
		if !kbiplex.IsMaximalBiplex(g, s.L, s.R, 1) {
			t.Fatalf("streamed non-MBP %v", s)
		}
	}
}

func TestEnumerateParallelWorkers(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1&workers=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	var summary summaryLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done || line.Error != "" {
			summary = line
			continue
		}
		n++
	}
	if !summary.Done || n != len(want) {
		t.Fatalf("parallel stream: %d solutions, done=%v, want %d", n, summary.Done, len(want))
	}
}

// streamCount drains one NDJSON enumeration stream, returning the
// solution count and the summary line.
func streamCount(t *testing.T, url string) (int, summaryLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	n := 0
	var summary summaryLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done || line.Error != "" {
			summary = line
			continue
		}
		n++
	}
	return n, summary
}

// TestEnumerateShardedParam checks ?shards=N routes the legacy stream
// through the sharded runtime with an identical solution set.
func TestEnumerateShardedParam(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, summary := streamCount(t, ts.URL+"/graphs/er/enumerate?k=1&shards=3")
	if !summary.Done || n != len(want) {
		t.Fatalf("sharded stream: %d solutions, done=%v, want %d", n, summary.Done, len(want))
	}
}

// TestDefaultShards checks Config.DefaultShards puts plain iTraversal
// queries on the sharded path while leaving explicit drivers and other
// algorithms alone.
func TestDefaultShards(t *testing.T) {
	ts := newTestServer(t, Config{DefaultShards: 2})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{"k=1", "k=1&workers=2", "k=1&algorithm=btraversal"} {
		n, summary := streamCount(t, ts.URL+"/graphs/er/enumerate?"+query)
		if !summary.Done || n != len(want) {
			t.Fatalf("?%s under default shards: %d solutions, done=%v, want %d", query, n, summary.Done, len(want))
		}
	}
}

func TestEnumerateValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 6, 6, 1, 1)
	for _, url := range []string{
		ts.URL + "/graphs/nope/enumerate?k=1",
		ts.URL + "/graphs/er/enumerate?k=0",
		ts.URL + "/graphs/er/enumerate?k=abc",
		ts.URL + "/graphs/er/enumerate?algorithm=quantum",
		ts.URL + "/graphs/er/enumerate?k=1&workers=2&algorithm=imb",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 4xx", url, resp.StatusCode)
		}
	}
}

func TestLoadValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"random":{"num_left":2,"num_right":2,"density":1}}`, // no name
		`{"name":"x"}`, // no source
		`{"name":"x","edges":[[0,0]],"random":{"num_left":2,"num_right":2,"density":1}}`, // two sources
		`{"name":"x","path":"/etc/passwd"}`,                                              // path loading disabled
		`{"name":"x","edges":[[-1,0]]}`,                                                  // negative id
		`{"name":"x","edges":[[2147483647,0]]}`,                                          // allocation-bomb id
		`{"name":"x","random":{"num_left":20000000,"num_right":20000000,"density":1}}`,   // oversized random
		`{"name":"x","random":{"num_left":100,"num_right":100,"density":1e9}}`,           // edge-count bomb
	} {
		resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusForbidden {
			t.Fatalf("body %s: status %d, want 4xx", body, resp.StatusCode)
		}
	}
}

func TestGraphLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "a", 6, 6, 1, 1)
	loadRandomGraph(t, ts, "b", 6, 6, 1, 2)

	var list []graphInfo
	getJSON(t, ts.URL+"/graphs", &list)
	if len(list) != 2 {
		t.Fatalf("listed %d graphs, want 2", len(list))
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/graphs", &list)
	if len(list) != 1 || list[0].Name != "b" {
		t.Fatalf("after delete: %+v", list)
	}
	if resp := getJSON(t, ts.URL+"/graphs/a", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted graph still served: %d", resp.StatusCode)
	}
}

func TestLargest(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 15, 15, 2.5, 6)
	var got struct {
		Found        bool    `json:"found"`
		L            []int32 `json:"l"`
		R            []int32 `json:"r"`
		BalancedSize int     `json:"balanced_size"`
	}
	resp := getJSON(t, ts.URL+"/graphs/er/largest?k=1", &got)
	if resp.StatusCode != http.StatusOK || !got.Found {
		t.Fatalf("largest: %d %+v", resp.StatusCode, got)
	}
	g := kbiplex.RandomBipartite(15, 15, 2.5, 6)
	want, ok, err := kbiplex.LargestBalancedMBP(g, 1)
	if err != nil || !ok {
		t.Fatalf("reference search: %v %v", ok, err)
	}
	if got.BalancedSize != min(len(want.L), len(want.R)) {
		t.Fatalf("balanced size %d, want %d", got.BalancedSize, min(len(want.L), len(want.R)))
	}
	if !kbiplex.IsMaximalBiplex(g, got.L, got.R, 1) {
		t.Fatal("largest returned a non-maximal biplex")
	}
}

// TestCancelStopsEnumeration is the end-to-end cancellation test: a
// client starts streaming an enumeration that would run far longer than
// the test, cancels the request after a few solutions, and the server's
// underlying enumeration must stop (observed via active_queries).
func TestCancelStopsEnumeration(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Large and dense enough that a full k=1 enumeration is effectively
	// unbounded at test scale.
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/graphs/big/enumerate?k=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
	}
	// The stream is alive and producing; now hang up.
	cancel()

	deadline := time.Now().Add(15 * time.Second)
	for {
		var info struct {
			Active int64 `json:"active_queries"`
		}
		getJSON(t, ts.URL+"/graphs/big", &info)
		if info.Active == 0 {
			return // enumeration goroutine exited: cancellation propagated
		}
		if time.Now().After(deadline) {
			t.Fatalf("enumeration still active %v after client cancel", 15*time.Second)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestQueryTimeoutEndsStream checks the server-side deadline: the NDJSON
// trailer reports the deadline error instead of done.
func TestQueryTimeoutEndsStream(t *testing.T) {
	ts := newTestServer(t, Config{QueryTimeout: 50 * time.Millisecond})
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)
	resp, err := http.Get(ts.URL + "/graphs/big/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last summaryLine
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done || line.Error != "" {
			last, sawSummary = line, true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary || last.Done || !strings.Contains(last.Error, "deadline") {
		t.Fatalf("want a deadline-error trailer, got %+v (summary seen: %v)", last, sawSummary)
	}
}

// TestMaxResultsCap checks the server-wide result cap reaches the engine.
func TestMaxResultsCap(t *testing.T) {
	ts := newTestServer(t, Config{MaxResults: 4})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	done := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done {
			done = true
			continue
		}
		if line.Error == "" {
			n++
		}
	}
	if !done || n != 4 {
		t.Fatalf("capped stream: %d solutions, done=%v, want 4", n, done)
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 10, 10, 2, 3)
	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1&max_results=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var st struct {
		Queries  int64       `json:"queries"`
		Streamed int64       `json:"solutions_streamed"`
		Graphs   []graphInfo `json:"graphs"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.Queries != 1 || len(st.Graphs) != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestQueryParamValidation table-tests the hardened parameter parsing:
// negative and overflowing numeric parameters must fail with 400 before
// reaching Options normalization (where, e.g., a negative max_results
// would silently mean "unlimited").
func TestQueryParamValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 6, 6, 1, 1)
	cases := []struct {
		query string
		want  int
	}{
		{"k=-1", http.StatusBadRequest},
		{"k=0", http.StatusBadRequest},
		{"k_left=-3", http.StatusBadRequest},
		{"k_right=0", http.StatusBadRequest},
		{"k=1&min_left=-1", http.StatusBadRequest},
		{"k=1&min_right=-2", http.StatusBadRequest},
		{"k=1&max_results=-5", http.StatusBadRequest},
		{"k=1&max_results=2147483648", http.StatusBadRequest},        // > 2^31-1
		{"k=99999999999999999999", http.StatusBadRequest},            // overflows int64
		{"k=1&min_left=99999999999999999999", http.StatusBadRequest}, // overflows int64
		{"k=3000000000", http.StatusBadRequest},                      // fits int64, > 2^31-1
		{"k=1&max_results=0", http.StatusOK},                         // explicit "unlimited" stays valid
		{"k=1&workers=-1", http.StatusOK},                            // negative workers = all cores
		{"k=1&min_left=2&min_right=2&max_results=3", http.StatusOK},
		{"k=1&shards=-1", http.StatusBadRequest},                     // unlike workers, negative shards is meaningless
		{"k=1&shards=2147483648", http.StatusBadRequest},             // > 2^31-1
		{"k=1&shards=2&workers=2", http.StatusBadRequest},            // one driver at a time
		{"k=1&shards=2&algorithm=btraversal", http.StatusBadRequest}, // sharded runtime is iTraversal-only
		{"k=1&shards=0", http.StatusOK},                              // explicit "sequential" stays valid
		{"k=1&shards=2", http.StatusOK},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + "/graphs/er/enumerate?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("enumerate?%s: status %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
	}
}

// TestPersistRestartRoundTrip loads a graph with persist=true, tears the
// server down, and brings a fresh server up over the same data dir: the
// graph must be listed, queryable and identical without re-POSTing.
func TestPersistRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ts, srv := newTestServerPair(t, Config{DataDir: dir})
	body := `{"name":"keep","random":{"num_left":12,"num_right":12,"density":2,"seed":3},"persist":true}`
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("persist load: status %d", resp.StatusCode)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, _ := newTestServerPair(t, Config{DataDir: dir})
	var info struct {
		Persisted bool `json:"persisted"`
		Resident  bool `json:"resident"`
		NumEdges  int  `json:"num_edges"`
	}
	if resp := getJSON(t, ts2.URL+"/graphs/keep", &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered graph info: status %d", resp.StatusCode)
	}
	if !info.Persisted || info.Resident {
		t.Fatalf("recovered graph should be persisted and cold, got %+v", info)
	}
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	if info.NumEdges != g.NumEdges() {
		t.Fatalf("recovered num_edges %d, want %d", info.NumEdges, g.NumEdges())
	}
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := countStreamed(t, ts2.URL+"/graphs/keep/enumerate?k=1")
	if n != len(want) {
		t.Fatalf("recovered enumeration streamed %d solutions, want %d", n, len(want))
	}
}

// countStreamed drains an NDJSON enumeration and returns the solution
// count, failing the test unless the stream ends with done:true.
func countStreamed(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enumerate: status %d", resp.StatusCode)
	}
	n := 0
	done := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done {
			done = true
		} else if line.Error != "" {
			t.Fatalf("stream error: %s", line.Error)
		} else {
			n++
		}
	}
	if !done {
		t.Fatal("stream did not end with done:true")
	}
	return n
}

// TestSnapshotUpload posts a binary snapshot body and checks the graph
// serves the same solutions as its in-process source.
func TestSnapshotUpload(t *testing.T) {
	ts := newTestServer(t, Config{})
	g := kbiplex.RandomBipartite(10, 10, 2, 5)
	var buf bytes.Buffer
	if err := kbiplex.WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/graphs?name=snap", SnapshotContentType, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("snapshot upload: status %d", resp.StatusCode)
	}
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := countStreamed(t, ts.URL+"/graphs/snap/enumerate?k=1"); n != len(want) {
		t.Fatalf("uploaded snapshot streamed %d solutions, want %d", n, len(want))
	}

	// Garbage bytes and a missing name must both 400.
	resp, err = http.Post(ts.URL+"/graphs?name=bad", SnapshotContentType, strings.NewReader("not a snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage snapshot: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/graphs", SnapshotContentType, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless snapshot: status %d, want 400", resp.StatusCode)
	}
}

// TestPersistWithoutDataDir: persist=true against a memory-only server
// is a deployment mismatch, reported as 501.
func TestPersistWithoutDataDir(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"name":"x","random":{"num_left":4,"num_right":4,"density":1,"seed":1},"persist":true}`
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("persist without data dir: status %d, want 501", resp.StatusCode)
	}
}

// TestDeleteReleasesEngine is the regression test for DELETE leaking
// engine memory: after populating the (α,β)-core cache, deleting the
// graph must drop the cache (CachedCores back to zero).
func TestDeleteReleasesEngine(t *testing.T) {
	ts, srv := newTestServerPair(t, Config{})
	loadRandomGraph(t, ts, "er", 15, 15, 2.5, 6)
	// A thresholded query materializes a core reduction in the cache.
	if n := countStreamed(t, ts.URL+"/graphs/er/enumerate?k=1&min_left=2&min_right=2"); n == 0 {
		t.Fatal("thresholded query found nothing; the cache assertion would be vacuous")
	}
	eng, ok := srv.catalog.EngineIfResident("er")
	if !ok {
		t.Fatal("graph not resident")
	}
	if st := eng.Stats(); st.CachedCores == 0 {
		t.Fatalf("expected a cached core after a thresholded query, got %+v", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/er", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if st := eng.Stats(); st.CachedCores != 0 {
		t.Fatalf("delete left %d cached cores; engine memory not released", st.CachedCores)
	}
}

// TestStatsStoreSection checks /stats carries the catalog counters.
func TestStatsStoreSection(t *testing.T) {
	ts := newTestServer(t, Config{DataDir: t.TempDir()})
	body := `{"name":"p","random":{"num_left":6,"num_right":6,"density":1,"seed":2},"persist":true}`
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var st struct {
		Store struct {
			Graphs    int   `json:"graphs"`
			Persisted int   `json:"persisted"`
			Resident  int   `json:"resident"`
			Hits      int64 `json:"hits"`
		} `json:"store"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.Store.Graphs != 1 || st.Store.Persisted != 1 || st.Store.Resident != 1 {
		t.Fatalf("store stats: %+v", st.Store)
	}
}
