package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	kbiplex "repro"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func loadRandomGraph(t *testing.T, ts *httptest.Server, name string, nl, nr int, density float64, seed int64) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"random":{"num_left":%d,"num_right":%d,"density":%g,"seed":%d}}`,
		name, nl, nr, density, seed)
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("loading graph: status %d: %s", resp.StatusCode, buf.String())
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	var got map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &got)
	if resp.StatusCode != http.StatusOK || got["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, got)
	}
}

// TestEnumerateRoundTrip loads a graph over HTTP, streams an enumeration
// and checks the NDJSON against the in-process API on the same seed.
func TestEnumerateRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)

	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var sols []kbiplex.Solution
	var summary summaryLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			solutionLine
			summaryLine
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done || line.Error != "" {
			summary = line.summaryLine
			continue
		}
		sols = append(sols, kbiplex.Solution{L: line.L, R: line.R})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !summary.Done || summary.Error != "" {
		t.Fatalf("stream did not finish cleanly: %+v", summary)
	}
	if len(sols) != len(want) || summary.Solutions != int64(len(want)) {
		t.Fatalf("streamed %d solutions (summary %d), want %d", len(sols), summary.Solutions, len(want))
	}
	for _, s := range sols {
		if !kbiplex.IsMaximalBiplex(g, s.L, s.R, 1) {
			t.Fatalf("streamed non-MBP %v", s)
		}
	}
}

func TestEnumerateParallelWorkers(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1&workers=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	var summary summaryLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done || line.Error != "" {
			summary = line
			continue
		}
		n++
	}
	if !summary.Done || n != len(want) {
		t.Fatalf("parallel stream: %d solutions, done=%v, want %d", n, summary.Done, len(want))
	}
}

func TestEnumerateValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 6, 6, 1, 1)
	for _, url := range []string{
		ts.URL + "/graphs/nope/enumerate?k=1",
		ts.URL + "/graphs/er/enumerate?k=0",
		ts.URL + "/graphs/er/enumerate?k=abc",
		ts.URL + "/graphs/er/enumerate?algorithm=quantum",
		ts.URL + "/graphs/er/enumerate?k=1&workers=2&algorithm=imb",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 4xx", url, resp.StatusCode)
		}
	}
}

func TestLoadValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"random":{"num_left":2,"num_right":2,"density":1}}`, // no name
		`{"name":"x"}`, // no source
		`{"name":"x","edges":[[0,0]],"random":{"num_left":2,"num_right":2,"density":1}}`, // two sources
		`{"name":"x","path":"/etc/passwd"}`,                                              // path loading disabled
		`{"name":"x","edges":[[-1,0]]}`,                                                  // negative id
		`{"name":"x","edges":[[2147483647,0]]}`,                                          // allocation-bomb id
		`{"name":"x","random":{"num_left":20000000,"num_right":20000000,"density":1}}`,   // oversized random
		`{"name":"x","random":{"num_left":100,"num_right":100,"density":1e9}}`,           // edge-count bomb
	} {
		resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusForbidden {
			t.Fatalf("body %s: status %d, want 4xx", body, resp.StatusCode)
		}
	}
}

func TestGraphLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "a", 6, 6, 1, 1)
	loadRandomGraph(t, ts, "b", 6, 6, 1, 2)

	var list []graphInfo
	getJSON(t, ts.URL+"/graphs", &list)
	if len(list) != 2 {
		t.Fatalf("listed %d graphs, want 2", len(list))
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/graphs", &list)
	if len(list) != 1 || list[0].Name != "b" {
		t.Fatalf("after delete: %+v", list)
	}
	if resp := getJSON(t, ts.URL+"/graphs/a", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted graph still served: %d", resp.StatusCode)
	}
}

func TestLargest(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 15, 15, 2.5, 6)
	var got struct {
		Found        bool    `json:"found"`
		L            []int32 `json:"l"`
		R            []int32 `json:"r"`
		BalancedSize int     `json:"balanced_size"`
	}
	resp := getJSON(t, ts.URL+"/graphs/er/largest?k=1", &got)
	if resp.StatusCode != http.StatusOK || !got.Found {
		t.Fatalf("largest: %d %+v", resp.StatusCode, got)
	}
	g := kbiplex.RandomBipartite(15, 15, 2.5, 6)
	want, ok, err := kbiplex.LargestBalancedMBP(g, 1)
	if err != nil || !ok {
		t.Fatalf("reference search: %v %v", ok, err)
	}
	if got.BalancedSize != min(len(want.L), len(want.R)) {
		t.Fatalf("balanced size %d, want %d", got.BalancedSize, min(len(want.L), len(want.R)))
	}
	if !kbiplex.IsMaximalBiplex(g, got.L, got.R, 1) {
		t.Fatal("largest returned a non-maximal biplex")
	}
}

// TestCancelStopsEnumeration is the end-to-end cancellation test: a
// client starts streaming an enumeration that would run far longer than
// the test, cancels the request after a few solutions, and the server's
// underlying enumeration must stop (observed via active_queries).
func TestCancelStopsEnumeration(t *testing.T) {
	ts := newTestServer(t, Config{})
	// Large and dense enough that a full k=1 enumeration is effectively
	// unbounded at test scale.
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/graphs/big/enumerate?k=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
	}
	// The stream is alive and producing; now hang up.
	cancel()

	deadline := time.Now().Add(15 * time.Second)
	for {
		var info struct {
			Active int64 `json:"active_queries"`
		}
		getJSON(t, ts.URL+"/graphs/big", &info)
		if info.Active == 0 {
			return // enumeration goroutine exited: cancellation propagated
		}
		if time.Now().After(deadline) {
			t.Fatalf("enumeration still active %v after client cancel", 15*time.Second)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestQueryTimeoutEndsStream checks the server-side deadline: the NDJSON
// trailer reports the deadline error instead of done.
func TestQueryTimeoutEndsStream(t *testing.T) {
	ts := newTestServer(t, Config{QueryTimeout: 50 * time.Millisecond})
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)
	resp, err := http.Get(ts.URL + "/graphs/big/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last summaryLine
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done || line.Error != "" {
			last, sawSummary = line, true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawSummary || last.Done || !strings.Contains(last.Error, "deadline") {
		t.Fatalf("want a deadline-error trailer, got %+v (summary seen: %v)", last, sawSummary)
	}
}

// TestMaxResultsCap checks the server-wide result cap reaches the engine.
func TestMaxResultsCap(t *testing.T) {
	ts := newTestServer(t, Config{MaxResults: 4})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n := 0
	done := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done {
			done = true
			continue
		}
		if line.Error == "" {
			n++
		}
	}
	if !done || n != 4 {
		t.Fatalf("capped stream: %d solutions, done=%v, want 4", n, done)
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 10, 10, 2, 3)
	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1&max_results=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var st struct {
		Queries  int64       `json:"queries"`
		Streamed int64       `json:"solutions_streamed"`
		Graphs   []graphInfo `json:"graphs"`
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.Queries != 1 || len(st.Graphs) != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
