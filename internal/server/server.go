// Package server exposes the kbiplex query engine over HTTP. One Server
// manages a set of named graphs, each wrapped in a kbiplex.Engine so the
// transpose and (α,β)-core preprocessing are computed once and shared by
// every query against that graph.
//
// Endpoints (all responses JSON; enumeration streams NDJSON):
//
//	GET    /healthz                       liveness + uptime
//	GET    /stats                         server-wide and per-graph counters
//	GET    /graphs                        list loaded graphs
//	POST   /graphs                        load a graph (inline edges, file path, or random)
//	GET    /graphs/{name}                 one graph's shape and engine stats
//	DELETE /graphs/{name}                 unload a graph
//	GET    /graphs/{name}/enumerate       stream MBPs as NDJSON
//	GET    /graphs/{name}/largest?k=1     largest balanced MBP
//
// Cancellation propagates from the HTTP request context through the
// engine into internal/core: a client that disconnects (or a server
// write timeout that fires) stops the underlying enumeration.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	kbiplex "repro"
)

// maxSide and maxRandomEdges bound what POST /graphs will materialize:
// vertex ids and counts are allocation sizes (bigraph offsets grow with
// the largest id), so a few dozen request bytes must not be able to
// demand gigabytes.
const (
	maxSide        = 1 << 24
	maxRandomEdges = 1 << 27
)

// Config bounds what the service accepts and what each query may cost.
type Config struct {
	// MaxResults caps every enumeration query (0 = unlimited); it is
	// passed through to each graph's Engine.
	MaxResults int
	// QueryTimeout is the per-query deadline (0 = none).
	QueryTimeout time.Duration
	// SpillDir, when non-empty, lets reverse-search queries spill their
	// deduplication stores to per-query subdirectories under it.
	SpillDir string
	// AllowPathLoad permits POST /graphs bodies that name an edge-list
	// file on the server's filesystem. Off by default: a network-exposed
	// service should not read arbitrary local paths.
	AllowPathLoad bool
	// MaxLoadBytes caps a POST /graphs request body (default 64 MiB).
	MaxLoadBytes int64
}

// Server routes HTTP traffic onto kbiplex engines. Create one with New;
// it is safe for concurrent use.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu     sync.RWMutex
	graphs map[string]*kbiplex.Engine

	start    time.Time
	queries  atomic.Int64
	streamed atomic.Int64
}

// New builds a server with no graphs loaded.
func New(cfg Config) *Server {
	if cfg.MaxLoadBytes <= 0 {
		cfg.MaxLoadBytes = 64 << 20
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		graphs: make(map[string]*kbiplex.Engine),
		start:  time.Now(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	s.mux.HandleFunc("GET /graphs/{name}", s.handleGraphInfo)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.handleDeleteGraph)
	s.mux.HandleFunc("GET /graphs/{name}/enumerate", s.handleEnumerate)
	s.mux.HandleFunc("GET /graphs/{name}/largest", s.handleLargest)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AddGraph registers g under name, replacing any previous graph with
// that name. It is how embedders (and kbiplexd's -load flag) preload
// graphs without going through HTTP.
func (s *Server) AddGraph(name string, g *kbiplex.Graph) error {
	if name == "" {
		return errors.New("server: graph name must be non-empty")
	}
	eng := kbiplex.NewEngine(g, kbiplex.EngineConfig{
		MaxResults: s.cfg.MaxResults,
		Timeout:    s.cfg.QueryTimeout,
		SpillDir:   s.cfg.SpillDir,
	})
	// Materialize the engine's shared view state at load time. Cheap
	// today (see Engine.Warm); the core index intentionally stays lazy.
	eng.Warm()
	s.mu.Lock()
	s.graphs[name] = eng
	s.mu.Unlock()
	return nil
}

// engine looks up a graph's engine by name.
func (s *Server) engine(name string) (*kbiplex.Engine, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	eng, ok := s.graphs[name]
	return eng, ok
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// graphInfo is the per-graph stats document.
type graphInfo struct {
	Name      string `json:"name"`
	NumLeft   int    `json:"num_left"`
	NumRight  int    `json:"num_right"`
	NumEdges  int    `json:"num_edges"`
	Queries   int64  `json:"queries"`
	Active    int64  `json:"active_queries"`
	Solutions int64  `json:"solutions_served"`
}

func (s *Server) graphInfos() []graphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]graphInfo, 0, len(s.graphs))
	for name, eng := range s.graphs {
		st := eng.Stats()
		out = append(out, graphInfo{
			Name: name, NumLeft: st.NumLeft, NumRight: st.NumRight, NumEdges: st.NumEdges,
			Queries: st.Queries, Active: st.Active, Solutions: st.Solutions,
		})
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	infos := s.graphInfos()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":     time.Since(s.start).Seconds(),
		"queries":            s.queries.Load(),
		"solutions_streamed": s.streamed.Load(),
		"graphs":             infos,
	})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.graphInfos())
}

// loadRequest is the POST /graphs body. Exactly one of Edges, Path and
// Random must be set.
type loadRequest struct {
	Name     string     `json:"name"`
	NumLeft  int        `json:"num_left"`
	NumRight int        `json:"num_right"`
	Edges    [][2]int32 `json:"edges"`
	Path     string     `json:"path"`
	Random   *struct {
		NumLeft  int     `json:"num_left"`
		NumRight int     `json:"num_right"`
		Density  float64 `json:"density"`
		Seed     int64   `json:"seed"`
	} `json:"random"`
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxLoadBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("name is required"))
		return
	}
	sources := 0
	for _, set := range []bool{req.Edges != nil, req.Path != "", req.Random != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, errors.New("exactly one of edges, path, random must be set"))
		return
	}
	var g *kbiplex.Graph
	switch {
	case req.Edges != nil:
		if req.NumLeft < 0 || req.NumRight < 0 || req.NumLeft > maxSide || req.NumRight > maxSide {
			writeError(w, http.StatusBadRequest, fmt.Errorf("num_left/num_right must be in [0, %d]", maxSide))
			return
		}
		for _, edge := range req.Edges {
			if edge[0] < 0 || edge[1] < 0 {
				writeError(w, http.StatusBadRequest, errors.New("edge ids must be non-negative"))
				return
			}
			if int(edge[0]) >= maxSide || int(edge[1]) >= maxSide {
				writeError(w, http.StatusBadRequest, fmt.Errorf("edge ids must be below %d", maxSide))
				return
			}
		}
		g = kbiplex.NewGraph(req.NumLeft, req.NumRight, req.Edges)
	case req.Path != "":
		if !s.cfg.AllowPathLoad {
			writeError(w, http.StatusForbidden, errors.New("loading from server paths is disabled"))
			return
		}
		var err error
		g, err = kbiplex.LoadEdgeList(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Random != nil:
		rr := req.Random
		if rr.NumLeft <= 0 || rr.NumRight <= 0 || rr.Density <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("random needs positive num_left, num_right, density"))
			return
		}
		if rr.NumLeft > maxSide || rr.NumRight > maxSide ||
			rr.Density*float64(rr.NumLeft+rr.NumRight) > maxRandomEdges {
			writeError(w, http.StatusBadRequest, fmt.Errorf("random graph too large (sides ≤ %d, edges ≤ %d)", maxSide, maxRandomEdges))
			return
		}
		g = kbiplex.RandomBipartite(rr.NumLeft, rr.NumRight, rr.Density, rr.Seed)
	}
	if err := s.AddGraph(req.Name, g); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": req.Name, "num_left": g.NumLeft(), "num_right": g.NumRight(), "num_edges": g.NumEdges(),
	})
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	eng, ok := s.engine(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		return
	}
	st := eng.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"name": name, "num_left": st.NumLeft, "num_right": st.NumRight, "num_edges": st.NumEdges,
		"queries": st.Queries, "active_queries": st.Active, "solutions_served": st.Solutions,
		"cached_cores": st.CachedCores, "core_index_built": st.CoreIndexBuilt,
	})
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	_, ok := s.graphs[name]
	delete(s.graphs, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// queryOptions parses the enumeration parameters shared by /enumerate
// and /largest from the URL query string.
func queryOptions(r *http.Request) (kbiplex.Options, int, error) {
	q := r.URL.Query()
	var opts kbiplex.Options
	var workers int
	intField := func(key string, dst *int) error {
		v := q.Get(key)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("parameter %s: %w", key, err)
		}
		*dst = n
		return nil
	}
	for key, dst := range map[string]*int{
		"k": &opts.K, "k_left": &opts.KLeft, "k_right": &opts.KRight,
		"min_left": &opts.MinLeft, "min_right": &opts.MinRight,
		"max_results": &opts.MaxResults, "workers": &workers,
	} {
		if err := intField(key, dst); err != nil {
			return opts, 0, err
		}
	}
	if !q.Has("k") && !q.Has("k_left") && !q.Has("k_right") {
		opts.K = 1
	}
	alg, err := kbiplex.ParseAlgorithm(q.Get("algorithm"))
	if err != nil {
		return opts, 0, err
	}
	opts.Algorithm = alg
	if workers != 0 && alg != kbiplex.ITraversal {
		return opts, 0, errors.New("parameter workers requires the iTraversal algorithm")
	}
	return opts, workers, nil
}

// solutionLine is one streamed NDJSON solution.
type solutionLine struct {
	L []int32 `json:"l"`
	R []int32 `json:"r"`
}

// summaryLine terminates an NDJSON stream: exactly one of Done or Error
// is set.
type summaryLine struct {
	Done      bool   `json:"done,omitempty"`
	Error     string `json:"error,omitempty"`
	Solutions int64  `json:"solutions"`
	Algorithm string `json:"algorithm,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.engine(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", r.PathValue("name")))
		return
	}
	opts, workers, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject unrunnable options while a clean status code is still
	// possible; past this point errors travel in the NDJSON trailer.
	if err := opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.queries.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	start := time.Now()
	var streamErr error
	emit := func(sol kbiplex.Solution) bool {
		if err := enc.Encode(solutionLine{L: sol.L, R: sol.R}); err != nil {
			streamErr = err
			return false
		}
		s.streamed.Add(1)
		// Flush per solution: enumeration delay, not buffering, should
		// govern when the client sees the next result.
		rc.Flush()
		return true
	}

	var st kbiplex.Stats
	if workers > 1 || workers < 0 {
		// The parallel driver calls emit from many goroutines; the
		// encoder and flusher are not concurrency-safe, so serialize.
		var mu sync.Mutex
		st, err = eng.EnumerateParallel(r.Context(), opts, workers, func(sol kbiplex.Solution) bool {
			mu.Lock()
			defer mu.Unlock()
			return emit(sol)
		})
	} else {
		st, err = eng.Enumerate(r.Context(), opts, emit)
	}
	if err == nil {
		err = streamErr
	}

	sum := summaryLine{
		Solutions: st.Solutions,
		Algorithm: st.Algorithm.String(),
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	if err != nil {
		sum.Error = err.Error()
	} else {
		sum.Done = true
	}
	enc.Encode(sum)
	rc.Flush()
}

func (s *Server) handleLargest(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.engine(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", r.PathValue("name")))
		return
	}
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be a positive integer"))
			return
		}
		k = n
	}
	s.queries.Add(1)
	start := time.Now()
	sol, found, err := eng.LargestBalanced(r.Context(), k)
	if err != nil {
		status := http.StatusInternalServerError
		// Covers both the client hanging up and the engine's own
		// per-query deadline: a configured budget is not a server fault.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err)
		return
	}
	resp := map[string]any{
		"found":      found,
		"elapsed_ms": time.Since(start).Milliseconds(),
	}
	if found {
		resp["l"] = sol.L
		resp["r"] = sol.R
		resp["balanced_size"] = min(len(sol.L), len(sol.R))
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
