// Package server exposes the kbiplex query engine over HTTP. One Server
// manages a set of named graphs through a persistent catalog
// (internal/store): each graph is wrapped in a kbiplex.Engine so the
// transpose and (α,β)-core preprocessing are computed once and shared
// by every query against that graph, and graphs loaded with persist=true
// survive restarts as CRC-checked binary snapshots under the data
// directory. A memory budget, when set, lets the catalog evict cold
// engines and re-hydrate them from their snapshots on demand.
//
// Endpoints (all responses JSON; enumeration streams NDJSON):
//
//	GET    /healthz                       liveness + uptime
//	GET    /stats                         server, store and per-graph counters
//	GET    /graphs                        list cataloged graphs
//	POST   /graphs                        load a graph (inline edges, file path,
//	                                      random, or a binary snapshot body)
//	GET    /graphs/{name}                 one graph's shape and engine stats
//	DELETE /graphs/{name}                 unload a graph (snapshot included)
//	GET    /graphs/{name}/enumerate       stream MBPs as NDJSON
//	GET    /graphs/{name}/largest?k=1     largest balanced MBP
//
// Cancellation propagates from the HTTP request context through the
// engine into internal/core: a client that disconnects (or a server
// write timeout that fires) stops the underlying enumeration.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	kbiplex "repro"
	"repro/internal/store"
)

// maxSide and maxRandomEdges bound what POST /graphs will materialize:
// vertex ids and counts are allocation sizes (bigraph offsets grow with
// the largest id), so a few dozen request bytes must not be able to
// demand gigabytes.
const (
	maxSide        = 1 << 24
	maxRandomEdges = 1 << 27
)

// SnapshotContentType is the POST /graphs media type for raw binary
// snapshot bodies (kbiplex.WriteBinaryGraph output). Name and persist
// travel as query parameters since the body is opaque.
const SnapshotContentType = "application/x-kbiplex-snapshot"

// Config bounds the service's durability, memory and per-query costs.
type Config struct {
	// MaxResults caps every enumeration query (0 = unlimited); it is
	// passed through to each graph's Engine.
	MaxResults int
	// QueryTimeout is the per-query deadline (0 = none).
	QueryTimeout time.Duration
	// SpillDir, when non-empty, lets reverse-search queries spill their
	// deduplication stores to per-query subdirectories under it.
	SpillDir string
	// AllowPathLoad permits POST /graphs bodies that name an edge-list
	// file on the server's filesystem. Off by default: a network-exposed
	// service should not read arbitrary local paths.
	AllowPathLoad bool
	// MaxLoadBytes caps a POST /graphs request body (default 64 MiB).
	MaxLoadBytes int64
	// DataDir, when non-empty, is the persistent catalog directory:
	// graphs loaded with persist=true are snapshotted there and recovered
	// on the next start. Empty disables persistence.
	DataDir string
	// MemoryBudget caps the estimated resident bytes of loaded graphs
	// (0 = unlimited); the catalog evicts the least-recently-used
	// persisted engines past it. See store.Config.MemoryBudget.
	MemoryBudget int64
}

// Server routes HTTP traffic onto kbiplex engines owned by a persistent
// graph catalog. Create one with New; it is safe for concurrent use.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	catalog *store.Catalog

	start    time.Time
	queries  atomic.Int64
	streamed atomic.Int64
}

// New builds a server over the catalog in cfg.DataDir (or a memory-only
// catalog when unset), recovering any previously persisted graphs. The
// recovered graphs stay cold until queried or warmed (see WarmAll).
func New(cfg Config) (*Server, error) {
	if cfg.MaxLoadBytes <= 0 {
		cfg.MaxLoadBytes = 64 << 20
	}
	catalog, err := store.Open(store.Config{
		Dir:          cfg.DataDir,
		MemoryBudget: cfg.MemoryBudget,
		Engine: kbiplex.EngineConfig{
			MaxResults: cfg.MaxResults,
			Timeout:    cfg.QueryTimeout,
			SpillDir:   cfg.SpillDir,
		},
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		catalog: catalog,
		start:   time.Now(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	s.mux.HandleFunc("GET /graphs/{name}", s.handleGraphInfo)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.handleDeleteGraph)
	s.mux.HandleFunc("GET /graphs/{name}/enumerate", s.handleEnumerate)
	s.mux.HandleFunc("GET /graphs/{name}/largest", s.handleLargest)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AddGraph registers g under name as a memory-only graph, replacing any
// previous graph with that name. It is how embedders (and kbiplexd's
// -load flag) preload graphs without going through HTTP; use
// AddGraphPersist to also snapshot the graph to the data directory.
func (s *Server) AddGraph(name string, g *kbiplex.Graph) error {
	_, err := s.catalog.Add(name, g, false)
	return err
}

// AddGraphPersist registers g under name and snapshots it to the data
// directory so it survives restarts. It fails when the server was built
// without a DataDir.
func (s *Server) AddGraphPersist(name string, g *kbiplex.Graph) error {
	_, err := s.catalog.Add(name, g, true)
	return err
}

// WarmAll hydrates every cold cataloged graph (typically the ones
// recovered from the data directory at startup). Per-graph failures go
// to report when non-nil; the failed graphs stay cataloged.
func (s *Server) WarmAll(report func(name string, err error)) {
	s.catalog.Warm(report)
}

// Infos lists the cataloged graphs (resident or not), sorted by name.
func (s *Server) Infos() []store.Info { return s.catalog.Infos() }

// Close flushes the catalog manifest and releases resident engines.
// In-flight queries keep the engine references they hold.
func (s *Server) Close() error { return s.catalog.Close() }

// engine resolves a graph name to its (possibly re-hydrated) engine,
// writing the HTTP error itself when resolution fails.
func (s *Server) engine(w http.ResponseWriter, name string) (*kbiplex.Engine, bool) {
	eng, err := s.catalog.Engine(name)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		} else {
			// The graph is cataloged but its snapshot would not load —
			// an operational fault, not a client one.
			writeError(w, http.StatusInternalServerError, err)
		}
		return nil, false
	}
	return eng, true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// graphInfo is the per-graph stats document. Engine counters are zero
// for graphs that are cataloged but not resident (not yet hydrated, or
// evicted under memory pressure).
type graphInfo struct {
	Name      string `json:"name"`
	NumLeft   int    `json:"num_left"`
	NumRight  int    `json:"num_right"`
	NumEdges  int    `json:"num_edges"`
	Persisted bool   `json:"persisted"`
	Resident  bool   `json:"resident"`
	Queries   int64  `json:"queries"`
	Active    int64  `json:"active_queries"`
	Solutions int64  `json:"solutions_served"`
}

func (s *Server) graphInfos() []graphInfo {
	infos := s.catalog.Infos()
	out := make([]graphInfo, 0, len(infos))
	for _, info := range infos {
		gi := graphInfo{
			Name: info.Name, NumLeft: info.NumLeft, NumRight: info.NumRight, NumEdges: info.NumEdges,
			Persisted: info.Persisted, Resident: info.Resident,
		}
		if eng, ok := s.catalog.EngineIfResident(info.Name); ok {
			st := eng.Stats()
			gi.Queries, gi.Active, gi.Solutions = st.Queries, st.Active, st.Solutions
		}
		out = append(out, gi)
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	infos := s.graphInfos()
	st := s.catalog.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":     time.Since(s.start).Seconds(),
		"queries":            s.queries.Load(),
		"solutions_streamed": s.streamed.Load(),
		"graphs":             infos,
		"store": map[string]any{
			"graphs":         st.Graphs,
			"persisted":      st.Persisted,
			"resident":       st.Resident,
			"resident_bytes": st.ResidentBytes,
			"memory_budget":  st.MemoryBudget,
			"hits":           st.Hits,
			"hydrations":     st.Hydrations,
			"evictions":      st.Evictions,
		},
	})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.graphInfos())
}

// loadRequest is the POST /graphs JSON body. Exactly one of Edges, Path
// and Random must be set; Persist additionally snapshots the graph to
// the server's data directory.
type loadRequest struct {
	Name     string     `json:"name"`
	NumLeft  int        `json:"num_left"`
	NumRight int        `json:"num_right"`
	Edges    [][2]int32 `json:"edges"`
	Path     string     `json:"path"`
	Persist  bool       `json:"persist"`
	Random   *struct {
		NumLeft  int     `json:"num_left"`
		NumRight int     `json:"num_right"`
		Density  float64 `json:"density"`
		Seed     int64   `json:"seed"`
	} `json:"random"`
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	if ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); ct == SnapshotContentType {
		s.handleLoadSnapshot(w, r)
		return
	}
	var req loadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxLoadBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("name is required"))
		return
	}
	sources := 0
	for _, set := range []bool{req.Edges != nil, req.Path != "", req.Random != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, errors.New("exactly one of edges, path, random must be set"))
		return
	}
	var g *kbiplex.Graph
	switch {
	case req.Edges != nil:
		if req.NumLeft < 0 || req.NumRight < 0 || req.NumLeft > maxSide || req.NumRight > maxSide {
			writeError(w, http.StatusBadRequest, fmt.Errorf("num_left/num_right must be in [0, %d]", maxSide))
			return
		}
		for _, edge := range req.Edges {
			if edge[0] < 0 || edge[1] < 0 {
				writeError(w, http.StatusBadRequest, errors.New("edge ids must be non-negative"))
				return
			}
			if int(edge[0]) >= maxSide || int(edge[1]) >= maxSide {
				writeError(w, http.StatusBadRequest, fmt.Errorf("edge ids must be below %d", maxSide))
				return
			}
		}
		g = kbiplex.NewGraph(req.NumLeft, req.NumRight, req.Edges)
	case req.Path != "":
		if !s.cfg.AllowPathLoad {
			writeError(w, http.StatusForbidden, errors.New("loading from server paths is disabled"))
			return
		}
		var err error
		g, err = kbiplex.LoadEdgeList(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Random != nil:
		rr := req.Random
		if rr.NumLeft <= 0 || rr.NumRight <= 0 || rr.Density <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("random needs positive num_left, num_right, density"))
			return
		}
		if rr.NumLeft > maxSide || rr.NumRight > maxSide ||
			rr.Density*float64(rr.NumLeft+rr.NumRight) > maxRandomEdges {
			writeError(w, http.StatusBadRequest, fmt.Errorf("random graph too large (sides ≤ %d, edges ≤ %d)", maxSide, maxRandomEdges))
			return
		}
		g = kbiplex.RandomBipartite(rr.NumLeft, rr.NumRight, rr.Density, rr.Seed)
	}
	s.finishLoad(w, req.Name, g, req.Persist)
}

// handleLoadSnapshot loads a raw binary snapshot body. The body is
// opaque bytes, so name and persist travel as query parameters:
//
//	POST /graphs?name=orders&persist=true
//	Content-Type: application/x-kbiplex-snapshot
func (s *Server) handleLoadSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, errors.New("query parameter name is required for snapshot bodies"))
		return
	}
	persist, err := parseBoolParam(r, "persist")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g, err := kbiplex.ReadBinaryGraph(http.MaxBytesReader(w, r.Body, s.cfg.MaxLoadBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot: %w", err))
		return
	}
	if g.NumLeft() > maxSide || g.NumRight() > maxSide {
		writeError(w, http.StatusBadRequest, fmt.Errorf("snapshot sides must be at most %d", maxSide))
		return
	}
	s.finishLoad(w, name, g, persist)
}

// finishLoad registers the decoded graph and writes the 201 response.
func (s *Server) finishLoad(w http.ResponseWriter, name string, g *kbiplex.Graph, persist bool) {
	var err error
	if persist {
		err = s.AddGraphPersist(name, g)
	} else {
		err = s.AddGraph(name, g)
	}
	if err != nil {
		// The request itself was already validated (name, decoded graph),
		// so a catalog failure here is the server's fault — a full disk,
		// an unwritable data dir — not the client's. The one structural
		// case gets its own code: persist against a dir-less deployment.
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNoDir) {
			status = http.StatusNotImplemented
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": name, "num_left": g.NumLeft(), "num_right": g.NumRight(), "num_edges": g.NumEdges(),
		"persisted": persist,
	})
}

// parseBoolParam reads an optional boolean query parameter.
func parseBoolParam(r *http.Request, key string) (bool, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("parameter %s: %w", key, err)
	}
	return b, nil
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := s.catalog.Info(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		return
	}
	doc := map[string]any{
		"name": name, "num_left": info.NumLeft, "num_right": info.NumRight, "num_edges": info.NumEdges,
		"persisted": info.Persisted, "resident": info.Resident,
	}
	// Engine counters only exist while the engine is resident; a cold
	// (recovered or evicted) graph still answers from the manifest.
	if eng, ok := s.catalog.EngineIfResident(name); ok {
		st := eng.Stats()
		doc["queries"] = st.Queries
		doc["active_queries"] = st.Active
		doc["solutions_served"] = st.Solutions
		doc["cached_cores"] = st.CachedCores
		doc["core_cache_hits"] = st.CoreHits
		doc["core_cache_misses"] = st.CoreMisses
		doc["core_index_built"] = st.CoreIndexBuilt
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ok, err := s.catalog.Delete(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxQueryParam bounds every numeric query parameter: far above any
// meaningful value, far below where downstream arithmetic could
// overflow.
const maxQueryParam = 1<<31 - 1

// queryOptions parses the enumeration parameters shared by /enumerate
// and /largest from the URL query string. Values are bounds-checked
// here so malformed requests fail with a 400 instead of leaking into
// Options normalization (where, e.g., a negative max_results would
// silently mean "unlimited").
func queryOptions(r *http.Request) (kbiplex.Options, int, error) {
	q := r.URL.Query()
	var opts kbiplex.Options
	var workers int
	intField := func(key string, dst *int, minValue int) error {
		v := q.Get(key)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			if errors.Is(err, strconv.ErrRange) {
				return fmt.Errorf("parameter %s: value %s overflows", key, v)
			}
			return fmt.Errorf("parameter %s: %w", key, err)
		}
		if n < minValue {
			return fmt.Errorf("parameter %s must be at least %d, got %d", key, minValue, n)
		}
		if n > maxQueryParam {
			return fmt.Errorf("parameter %s must be at most %d, got %d", key, maxQueryParam, n)
		}
		*dst = n
		return nil
	}
	// workers alone may be negative: workers=-1 means "all cores" to the
	// parallel driver.
	for _, p := range []struct {
		key      string
		dst      *int
		minValue int
	}{
		{"k", &opts.K, 1},
		{"k_left", &opts.KLeft, 1},
		{"k_right", &opts.KRight, 1},
		{"min_left", &opts.MinLeft, 0},
		{"min_right", &opts.MinRight, 0},
		{"max_results", &opts.MaxResults, 0},
		{"workers", &workers, -maxQueryParam},
	} {
		if err := intField(p.key, p.dst, p.minValue); err != nil {
			return opts, 0, err
		}
	}
	if !q.Has("k") && !q.Has("k_left") && !q.Has("k_right") {
		opts.K = 1
	}
	alg, err := kbiplex.ParseAlgorithm(q.Get("algorithm"))
	if err != nil {
		return opts, 0, err
	}
	opts.Algorithm = alg
	if workers != 0 && alg != kbiplex.ITraversal {
		return opts, 0, errors.New("parameter workers requires the iTraversal algorithm")
	}
	return opts, workers, nil
}

// solutionLine is one streamed NDJSON solution.
type solutionLine struct {
	L []int32 `json:"l"`
	R []int32 `json:"r"`
}

// summaryLine terminates an NDJSON stream: exactly one of Done or Error
// is set.
type summaryLine struct {
	Done      bool   `json:"done,omitempty"`
	Error     string `json:"error,omitempty"`
	Solutions int64  `json:"solutions"`
	Algorithm string `json:"algorithm,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	opts, workers, err := queryOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject unrunnable options while a clean status code is still
	// possible; past this point errors travel in the NDJSON trailer.
	if err := opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	eng, ok := s.engine(w, r.PathValue("name"))
	if !ok {
		return
	}
	s.queries.Add(1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	start := time.Now()
	var streamErr error
	emit := func(sol kbiplex.Solution) bool {
		if err := enc.Encode(solutionLine{L: sol.L, R: sol.R}); err != nil {
			streamErr = err
			return false
		}
		s.streamed.Add(1)
		// Flush per solution: enumeration delay, not buffering, should
		// govern when the client sees the next result.
		rc.Flush()
		return true
	}

	var st kbiplex.Stats
	if workers > 1 || workers < 0 {
		// The parallel driver calls emit from many goroutines; the
		// encoder and flusher are not concurrency-safe, so serialize.
		var mu sync.Mutex
		st, err = eng.EnumerateParallel(r.Context(), opts, workers, func(sol kbiplex.Solution) bool {
			mu.Lock()
			defer mu.Unlock()
			return emit(sol)
		})
	} else {
		st, err = eng.Enumerate(r.Context(), opts, emit)
	}
	if err == nil {
		err = streamErr
	}

	sum := summaryLine{
		Solutions: st.Solutions,
		Algorithm: st.Algorithm.String(),
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	if err != nil {
		sum.Error = err.Error()
	} else {
		sum.Done = true
	}
	enc.Encode(sum)
	rc.Flush()
}

func (s *Server) handleLargest(w http.ResponseWriter, r *http.Request) {
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxQueryParam {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be a positive integer at most %d", maxQueryParam))
			return
		}
		k = n
	}
	eng, ok := s.engine(w, r.PathValue("name"))
	if !ok {
		return
	}
	s.queries.Add(1)
	start := time.Now()
	sol, found, err := eng.LargestBalanced(r.Context(), k)
	if err != nil {
		status := http.StatusInternalServerError
		// Covers both the client hanging up and the engine's own
		// per-query deadline: a configured budget is not a server fault.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err)
		return
	}
	resp := map[string]any{
		"found":      found,
		"elapsed_ms": time.Since(start).Milliseconds(),
	}
	if found {
		resp["l"] = sol.L
		resp["r"] = sol.R
		resp["balanced_size"] = min(len(sol.L), len(sol.R))
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
