// Package server exposes the kbiplex query engine over HTTP. One Server
// manages a set of named graphs through a persistent catalog
// (internal/store): each graph is wrapped in a kbiplex.Engine so the
// transpose and (α,β)-core preprocessing are computed once and shared
// by every query against that graph, and graphs loaded with persist=true
// survive restarts as CRC-checked binary snapshots under the data
// directory. A memory budget, when set, lets the catalog evict cold
// engines and re-hydrate them from their snapshots on demand.
//
// The service speaks two API generations over one implementation:
//
// Versioned /v1 (job-oriented; see v1.go): enumerations are submitted
// as jobs carrying a typed JSON Query document, executed by a bounded
// worker pool (internal/jobs), and delivered from a sequence-numbered
// result spool so a client that lost its connection resumes with
// ?cursor=N instead of re-running the query.
//
//	POST   /v1/graphs/{name}/jobs         submit a Query document → job
//	POST   /v1/graphs/{name}/edges        mutate a graph (insert/delete edges)
//	GET    /v1/jobs                       list retained jobs
//	GET    /v1/jobs/{id}                  job status, progress and stats
//	GET    /v1/jobs/{id}/results?cursor=N NDJSON results from an offset
//	DELETE /v1/jobs/{id}                  cancel (active) / remove (finished)
//
// Graphs are dynamic: POST /v1/graphs/{name}/edges journals edge
// inserts and deletes through a per-graph write-ahead log
// (internal/mutate, replayed at boot), swaps in an updated engine
// copy-on-write, and advances the graph's epoch. Jobs record the epoch
// current at submission; a job racing a mutation keeps streaming the
// consistent snapshot it started on. See mutate.go.
//
// The graph-management routes are also mounted under /v1 unchanged.
// Legacy unversioned endpoints (all responses JSON; enumeration streams
// NDJSON) are thin adapters over the same Query decode path:
//
//	GET    /healthz                       liveness + uptime
//	GET    /stats                         server, store, jobs and per-graph counters
//	GET    /graphs                        list cataloged graphs
//	POST   /graphs                        load a graph (inline edges, file path,
//	                                      random, or a binary snapshot body)
//	GET    /graphs/{name}                 one graph's shape and engine stats
//	DELETE /graphs/{name}                 unload a graph (snapshot included)
//	GET    /graphs/{name}/enumerate       stream MBPs as NDJSON
//	GET    /graphs/{name}/largest?k=1     largest balanced MBP
//
// Cancellation propagates from the HTTP request context through the
// engine into internal/core: a client that disconnects (or a server
// write timeout that fires) stops the underlying enumeration. Server
// shutdown (BeginShutdown) additionally cancels every in-flight stream
// with a distinguished cause, so NDJSON responses end with an error
// frame naming the shutdown instead of a silent TCP cut.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	kbiplex "repro"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/mutate"
	"repro/internal/rescache"
	"repro/internal/store"
)

// ErrShuttingDown is the cancellation cause of every request context
// once BeginShutdown is called; streaming handlers surface it in their
// final NDJSON error frame.
var ErrShuttingDown = errors.New("server shutting down")

// maxSide and maxRandomEdges bound what POST /graphs will materialize:
// vertex ids and counts are allocation sizes (bigraph offsets grow with
// the largest id), so a few dozen request bytes must not be able to
// demand gigabytes.
const (
	maxSide        = 1 << 24
	maxRandomEdges = 1 << 27
)

// SnapshotContentType is the POST /graphs media type for raw binary
// snapshot bodies (kbiplex.WriteBinaryGraph output). Name and persist
// travel as query parameters since the body is opaque.
const SnapshotContentType = "application/x-kbiplex-snapshot"

// Config bounds the service's durability, memory and per-query costs.
type Config struct {
	// MaxResults caps every enumeration query (0 = unlimited); it is
	// passed through to each graph's Engine.
	MaxResults int
	// QueryTimeout is the per-query deadline (0 = none).
	QueryTimeout time.Duration
	// SpillDir, when non-empty, lets reverse-search queries spill their
	// deduplication stores to per-query subdirectories under it.
	SpillDir string
	// AllowPathLoad permits POST /graphs bodies that name an edge-list
	// file on the server's filesystem. Off by default: a network-exposed
	// service should not read arbitrary local paths.
	AllowPathLoad bool
	// MaxLoadBytes caps a POST /graphs request body (default 64 MiB).
	MaxLoadBytes int64
	// DataDir, when non-empty, is the persistent catalog directory:
	// graphs loaded with persist=true are snapshotted there and recovered
	// on the next start. Empty disables persistence.
	DataDir string
	// MemoryBudget caps the estimated resident bytes of loaded graphs
	// (0 = unlimited); the catalog reclaims the least-recently-used
	// persisted engines past it. See store.Config.MemoryBudget.
	MemoryBudget int64
	// StorageTier selects the catalog's residency policy — heap arrays,
	// zero-copy mmap views of snapshots, or (the default) automatic
	// demotion/promotion between the two under memory pressure. See
	// store.Tier.
	StorageTier store.Tier
	// DefaultShards, when > 1, runs iTraversal queries that pick neither
	// workers nor shards on the sharded runtime with this many shards —
	// the operator's knob (kbiplexd -default-shards) for putting every
	// plain query on the multi-core path. Queries that set workers or
	// shards, and non-iTraversal queries, are unaffected.
	DefaultShards int
	// Jobs bounds the /v1 job manager (worker pool size, queue depth,
	// spool cap, retention); zero values take the jobs package defaults.
	Jobs jobs.Config
	// ResultCacheBytes caps the hot-query result cache (internal/
	// rescache): completed spools are cached under (graph payload CRC,
	// canonical query) and repeat queries are served with zero planner
	// work. 0 takes the default (64 MiB); negative disables the cache.
	ResultCacheBytes int64
	// ResultCachePersist, with a DataDir, persists popular spools in an
	// append-log under DataDir/rescache so a restart still serves its
	// pre-restart hot queries from cache.
	ResultCachePersist bool
	// JournalCompactOps is the per-graph mutation-delta size (journaled
	// ops since the last base snapshot) past which a mutation compacts
	// the live graph into a fresh snapshot and resets the journal. 0
	// takes the internal/mutate default (4096).
	JournalCompactOps int
	// JournalNoSync skips the per-batch fsync on the mutation journal:
	// faster writes, but a host crash can lose the most recent batches
	// (the framing still recovers the intact prefix).
	JournalNoSync bool
	// Cluster, when non-nil, joins this server to a static multi-node
	// membership (see internal/cluster): catalog changes replicate to
	// peers through an op log, sharded iTraversal queries fan out over
	// RPC, and misplaced stateless graph reads 307-redirect to their
	// rendezvous owner. The server fills the config's Source and Applier
	// seams itself; Dir defaults to <DataDir>/cluster when unset.
	Cluster *cluster.Config
}

// Server routes HTTP traffic onto kbiplex engines owned by a persistent
// graph catalog. Create one with New; it is safe for concurrent use.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	catalog *store.Catalog
	jobs    *jobs.Manager
	results *rescache.Cache // nil when the result cache is disabled
	mut     *mutate.Manager // per-graph mutation journals and epochs
	cluster *cluster.Node   // nil outside cluster deployments

	// Sharded-run reporting (/stats "dist"): cumulative counters plus
	// the last run's per-shard breakdown, one section whether the query
	// ran on the in-process sharded runtime or fanned out to the
	// cluster.
	distMu       sync.Mutex
	distQueries  int64
	distMessages int64
	distCombined int64
	distLast     []kbiplex.ShardStats

	// lifecycle is open until BeginShutdown; every request context is
	// tied to it so in-flight streams can be drained with a cause.
	lifecycle context.Context
	shutdown  context.CancelCauseFunc

	start    time.Time
	queries  atomic.Int64
	streamed atomic.Int64
}

// New builds a server over the catalog in cfg.DataDir (or a memory-only
// catalog when unset), recovering any previously persisted graphs. The
// recovered graphs stay cold until queried or warmed (see WarmAll).
func New(cfg Config) (*Server, error) {
	if cfg.MaxLoadBytes <= 0 {
		cfg.MaxLoadBytes = 64 << 20
	}
	catalog, err := store.Open(store.Config{
		Dir:          cfg.DataDir,
		MemoryBudget: cfg.MemoryBudget,
		Tier:         cfg.StorageTier,
		Engine: kbiplex.EngineConfig{
			MaxResults: cfg.MaxResults,
			Timeout:    cfg.QueryTimeout,
			SpillDir:   cfg.SpillDir,
		},
	})
	if err != nil {
		return nil, err
	}
	var results *rescache.Cache
	if cfg.ResultCacheBytes >= 0 {
		dir := ""
		if cfg.ResultCachePersist && cfg.DataDir != "" {
			dir = filepath.Join(cfg.DataDir, "rescache")
		}
		results, err = rescache.Open(rescache.Config{MaxBytes: cfg.ResultCacheBytes, Dir: dir})
		if err != nil {
			catalog.Close()
			return nil, err
		}
	}
	journalDir := ""
	if cfg.DataDir != "" {
		journalDir = filepath.Join(cfg.DataDir, "journal")
	}
	lifecycle, shutdown := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		catalog:   catalog,
		jobs:      jobs.NewManager(lifecycle, cfg.Jobs),
		results:   results,
		mut:       mutate.NewManager(mutate.Config{Dir: journalDir, CompactOps: cfg.JournalCompactOps, Sync: !cfg.JournalNoSync}),
		lifecycle: lifecycle,
		shutdown:  shutdown,
		start:     time.Now(),
	}
	// Re-apply any journaled mutations over the recovered snapshots so
	// the graphs resume at their pre-restart epoch and content.
	s.recoverMutations(nil)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	// The graph-management routes are mounted both unversioned (legacy)
	// and under /v1; the job routes are /v1-only.
	for _, prefix := range []string{"", "/v1"} {
		s.mux.HandleFunc("GET "+prefix+"/graphs", s.handleListGraphs)
		s.mux.HandleFunc("POST "+prefix+"/graphs", s.handleLoadGraph)
		s.mux.HandleFunc("GET "+prefix+"/graphs/{name}", s.handleGraphInfo)
		s.mux.HandleFunc("DELETE "+prefix+"/graphs/{name}", s.handleDeleteGraph)
		s.mux.HandleFunc("GET "+prefix+"/graphs/{name}/enumerate", s.handleEnumerate)
		s.mux.HandleFunc("GET "+prefix+"/graphs/{name}/largest", s.handleLargest)
	}
	s.mux.HandleFunc("POST /v1/graphs/{name}/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("POST /v1/graphs/{name}/edges", s.handleMutateEdges)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleJobResults)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	if cfg.Cluster != nil {
		cc := *cfg.Cluster
		if cc.Dir == "" && cfg.DataDir != "" {
			cc.Dir = filepath.Join(cfg.DataDir, "cluster")
		}
		// The cluster starts last: recovery above restored the catalog
		// and journals, so replicated records arriving on the very first
		// heartbeat apply against current state.
		if err := s.startCluster(cc); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// BeginShutdown starts draining: every in-flight request context is
// cancelled with ErrShuttingDown (streaming handlers emit a final error
// frame), running jobs are cancelled with the same cause, and new job
// submissions are rejected. It does not wait; call Close afterwards to
// wait for the job workers and flush the catalog. Idempotent.
func (s *Server) BeginShutdown() { s.shutdown(ErrShuttingDown) }

// requestCtx derives the handler context for r: cancelled when the
// client hangs up (as before) and additionally, with a distinguished
// cause, when the server begins shutting down.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(r.Context())
	stop := context.AfterFunc(s.lifecycle, func() { cancel(ErrShuttingDown) })
	return ctx, func() { stop(); cancel(nil) }
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AddGraph registers g under name as a memory-only graph, replacing any
// previous graph with that name. It is how embedders (and kbiplexd's
// -load flag) preload graphs without going through HTTP; use
// AddGraphPersist to also snapshot the graph to the data directory.
func (s *Server) AddGraph(name string, g *kbiplex.Graph) error {
	_, err := s.catalog.Add(name, g, false)
	return err
}

// AddGraphPersist registers g under name and snapshots it to the data
// directory so it survives restarts. It fails when the server was built
// without a DataDir.
func (s *Server) AddGraphPersist(name string, g *kbiplex.Graph) error {
	_, err := s.catalog.Add(name, g, true)
	return err
}

// WarmAll hydrates every cold cataloged graph (typically the ones
// recovered from the data directory at startup). Per-graph failures go
// to report when non-nil; the failed graphs stay cataloged.
func (s *Server) WarmAll(report func(name string, err error)) {
	s.catalog.Warm(report)
}

// Infos lists the cataloged graphs (resident or not), sorted by name.
func (s *Server) Infos() []store.Info { return s.catalog.Infos() }

// Close drains the job pool (cancelling whatever still runs), then
// flushes the catalog manifest and releases resident engines. In-flight
// queries keep the engine references they hold. Callers wanting
// graceful error frames on open streams call BeginShutdown first.
func (s *Server) Close() error {
	s.BeginShutdown()
	// The cluster node goes first: no replicated record may apply, and
	// no inbound query RPC may resolve an engine, while the catalog is
	// tearing down beneath them.
	if s.cluster != nil {
		s.cluster.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jerr := s.jobs.Close(ctx, ErrShuttingDown)
	if s.results != nil {
		if rerr := s.results.Close(); rerr != nil && jerr == nil {
			jerr = rerr
		}
	}
	s.mut.Close()
	if cerr := s.catalog.Close(); cerr != nil {
		return cerr
	}
	return jerr
}

// engine resolves a graph name to its (possibly re-hydrated) engine,
// writing the HTTP error itself when resolution fails.
func (s *Server) engine(w http.ResponseWriter, name string) (*kbiplex.Engine, bool) {
	eng, err := s.catalog.Engine(name)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		} else {
			// The graph is cataloged but its snapshot would not load —
			// an operational fault, not a client one.
			writeError(w, http.StatusInternalServerError, err)
		}
		return nil, false
	}
	return eng, true
}

// headerCache reports how the result cache treated a query: "hit" when
// a cached spool was served without planner work, "miss" when it ran.
const headerCache = "X-Kbiplex-Cache"

// fastResultsCap is the admission-tier split: a query asking for at
// most this many results is queued on the fast tier so it never waits
// behind a cold full enumeration.
const fastResultsCap = 4096

// cacheKey resolves (graph, query) to the result-cache key. ok=false
// means the pair is not cacheable: the cache is disabled, the graph is
// unknown, or its content fingerprint is unrecorded (a pre-upgrade
// manifest entry).
func (s *Server) cacheKey(graph string, q kbiplex.Query) (rescache.Key, bool) {
	if s.results == nil {
		return rescache.Key{}, false
	}
	info, ok := s.catalog.Info(graph)
	if !ok || info.CRC32 == 0 {
		return rescache.Key{}, false
	}
	return rescache.Key{GraphCRC: info.CRC32, Query: q.CacheKey()}, true
}

// invalidateResults drops cached spools for a graph content fingerprint
// (after a DELETE or a replacing load). Correctness never depends on
// the call — a changed graph has a new CRC and old entries stop
// matching — but dropping them returns the memory immediately.
func (s *Server) invalidateResults(crc uint32) {
	if s.results != nil && crc != 0 {
		s.results.InvalidateGraph(crc)
	}
}

// etagMatches reports whether an If-None-Match header revalidates etag
// (strong comparison; "*" matches anything per RFC 9110).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, c := range strings.Split(header, ",") {
		if strings.TrimSpace(c) == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.lifecycle.Err() != nil {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// graphInfo is the per-graph stats document. Engine counters are zero
// for graphs that are cataloged but not resident (not yet hydrated, or
// evicted under memory pressure).
type graphInfo struct {
	Name      string `json:"name"`
	NumLeft   int    `json:"num_left"`
	NumRight  int    `json:"num_right"`
	NumEdges  int    `json:"num_edges"`
	Persisted bool   `json:"persisted"`
	Resident  bool   `json:"resident"`
	// Residency names the graph's storage tier: "resident" (heap),
	// "mapped" (served zero-copy from its snapshot), or "cold".
	Residency string `json:"residency"`
	Epoch     uint64 `json:"epoch"`
	Queries   int64  `json:"queries"`
	Active    int64  `json:"active_queries"`
	Solutions int64  `json:"solutions_served"`
}

func (s *Server) graphInfos() []graphInfo {
	infos := s.catalog.Infos()
	out := make([]graphInfo, 0, len(infos))
	for _, info := range infos {
		gi := graphInfo{
			Name: info.Name, NumLeft: info.NumLeft, NumRight: info.NumRight, NumEdges: info.NumEdges,
			Persisted: info.Persisted, Resident: info.Resident, Residency: info.Residency,
			Epoch: s.graphEpoch(info.Name),
		}
		if eng, ok := s.catalog.EngineIfResident(info.Name); ok {
			st := eng.Stats()
			gi.Queries, gi.Active, gi.Solutions = st.Queries, st.Active, st.Solutions
		}
		out = append(out, gi)
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	infos := s.graphInfos()
	st := s.catalog.Stats()
	jst := s.jobs.Stats()
	// Counters change under the responder's feet; an intermediary
	// replaying them would misreport the server.
	w.Header().Set("Cache-Control", "no-store")
	doc := map[string]any{
		"uptime_seconds":     time.Since(s.start).Seconds(),
		"queries":            s.queries.Load(),
		"solutions_streamed": s.streamed.Load(),
		"graphs":             infos,
		"jobs": map[string]any{
			"submitted":    jst.Submitted,
			"rejected":     jst.Rejected,
			"completed":    jst.Completed,
			"failed":       jst.Failed,
			"canceled":     jst.Canceled,
			"cached_done":  jst.CachedDone,
			"queued":       jst.Queued,
			"queued_fast":  jst.QueuedFast,
			"running":      jst.Running,
			"retained":     jst.Retained,
			"spilled_jobs": jst.SpilledJobs,
			"spill_bytes":  jst.SpillBytes,
			"spill_errors": jst.SpillErrors,
		},
		"store": map[string]any{
			"graphs":         st.Graphs,
			"persisted":      st.Persisted,
			"resident":       st.Resident,
			"mapped":         st.Mapped,
			"resident_bytes": st.ResidentBytes,
			"mapped_bytes":   st.MappedBytes,
			"memory_budget":  st.MemoryBudget,
			"tier":           string(st.Tier),
			"hits":           st.Hits,
			"hydrations":     st.Hydrations,
			"evictions":      st.Evictions,
			"demotions":      st.Demotions,
			"promotions":     st.Promotions,
		},
	}
	mst := s.mut.Stats()
	doc["mutations"] = map[string]any{
		"graphs":           mst.Graphs,
		"batches":          mst.Batches,
		"ops":              mst.Ops,
		"noops":            mst.Noops,
		"compactions":      mst.Compactions,
		"replayed_ops":     mst.ReplayedOps,
		"truncated_tails":  mst.TruncatedTails,
		"quarantined_logs": mst.QuarantinedLogs,
		"journal_records":  mst.JournalRecords,
		"journal_bytes":    mst.JournalBytes,
	}
	if sec, ok := s.distSection(); ok {
		doc["dist"] = sec
	}
	if s.cluster != nil {
		doc["cluster"] = s.cluster.Status()
	}
	if s.results != nil {
		cst := s.results.Stats()
		doc["result_cache"] = map[string]any{
			"entries":     cst.Entries,
			"bytes":       cst.Bytes,
			"max_bytes":   cst.MaxBytes,
			"hits":        cst.Hits,
			"misses":      cst.Misses,
			"admitted":    cst.Admitted,
			"evicted":     cst.Evicted,
			"invalidated": cst.Invalidated,
			"persisted":   cst.Persisted,
			"log_bytes":   cst.LogBytes,
			"compactions": cst.Compactions,
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.graphInfos())
}

// loadRequest is the POST /graphs JSON body. Exactly one of Edges, Path
// and Random must be set; Persist additionally snapshots the graph to
// the server's data directory.
type loadRequest struct {
	Name     string     `json:"name"`
	NumLeft  int        `json:"num_left"`
	NumRight int        `json:"num_right"`
	Edges    [][2]int32 `json:"edges"`
	Path     string     `json:"path"`
	Persist  bool       `json:"persist"`
	Random   *struct {
		NumLeft  int     `json:"num_left"`
		NumRight int     `json:"num_right"`
		Density  float64 `json:"density"`
		Seed     int64   `json:"seed"`
	} `json:"random"`
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	if ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); ct == SnapshotContentType {
		s.handleLoadSnapshot(w, r)
		return
	}
	var req loadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxLoadBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, errors.New("name is required"))
		return
	}
	sources := 0
	for _, set := range []bool{req.Edges != nil, req.Path != "", req.Random != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, errors.New("exactly one of edges, path, random must be set"))
		return
	}
	var g *kbiplex.Graph
	switch {
	case req.Edges != nil:
		if req.NumLeft < 0 || req.NumRight < 0 || req.NumLeft > maxSide || req.NumRight > maxSide {
			writeError(w, http.StatusBadRequest, fmt.Errorf("num_left/num_right must be in [0, %d]", maxSide))
			return
		}
		for _, edge := range req.Edges {
			if edge[0] < 0 || edge[1] < 0 {
				writeError(w, http.StatusBadRequest, errors.New("edge ids must be non-negative"))
				return
			}
			if int(edge[0]) >= maxSide || int(edge[1]) >= maxSide {
				writeError(w, http.StatusBadRequest, fmt.Errorf("edge ids must be below %d", maxSide))
				return
			}
		}
		g = kbiplex.NewGraph(req.NumLeft, req.NumRight, req.Edges)
	case req.Path != "":
		if !s.cfg.AllowPathLoad {
			writeError(w, http.StatusForbidden, errors.New("loading from server paths is disabled"))
			return
		}
		var err error
		g, err = kbiplex.LoadEdgeList(req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	case req.Random != nil:
		rr := req.Random
		if rr.NumLeft <= 0 || rr.NumRight <= 0 || rr.Density <= 0 {
			writeError(w, http.StatusBadRequest, errors.New("random needs positive num_left, num_right, density"))
			return
		}
		if rr.NumLeft > maxSide || rr.NumRight > maxSide ||
			rr.Density*float64(rr.NumLeft+rr.NumRight) > maxRandomEdges {
			writeError(w, http.StatusBadRequest, fmt.Errorf("random graph too large (sides ≤ %d, edges ≤ %d)", maxSide, maxRandomEdges))
			return
		}
		g = kbiplex.RandomBipartite(rr.NumLeft, rr.NumRight, rr.Density, rr.Seed)
	}
	s.finishLoad(w, req.Name, g, req.Persist)
}

// handleLoadSnapshot loads a raw binary snapshot body. The body is
// opaque bytes, so name and persist travel as query parameters:
//
//	POST /graphs?name=orders&persist=true
//	Content-Type: application/x-kbiplex-snapshot
func (s *Server) handleLoadSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, errors.New("query parameter name is required for snapshot bodies"))
		return
	}
	persist, err := parseBoolParam(r, "persist")
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	g, err := kbiplex.ReadBinaryGraph(http.MaxBytesReader(w, r.Body, s.cfg.MaxLoadBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding snapshot: %w", err))
		return
	}
	if g.NumLeft() > maxSide || g.NumRight() > maxSide {
		writeError(w, http.StatusBadRequest, fmt.Errorf("snapshot sides must be at most %d", maxSide))
		return
	}
	s.finishLoad(w, name, g, persist)
}

// addGraph registers g under name: the mutation journal of any replaced
// graph is dropped, and a replace with different content invalidates the
// old content's cached results. Shared by the HTTP load path and the
// cluster's replicated-put applier.
func (s *Server) addGraph(name string, g *kbiplex.Graph, persist bool) error {
	old, hadOld := s.catalog.Info(name)
	// A replace restarts the graph's mutation history at epoch 0. The
	// journal is dropped before the new snapshot lands: if the process
	// dies in between, booting with the old content rewound to its base
	// beats replaying the old content's ops onto the new content.
	if hadOld {
		s.mut.Drop(name)
	}
	var err error
	if persist {
		err = s.AddGraphPersist(name, g)
	} else {
		err = s.AddGraph(name, g)
	}
	if err == nil && hadOld {
		if now, ok := s.catalog.Info(name); ok && now.CRC32 != old.CRC32 {
			s.invalidateResults(old.CRC32)
		}
	}
	return err
}

// finishLoad registers the decoded graph, replicates it to the cluster,
// and writes the 201 response.
func (s *Server) finishLoad(w http.ResponseWriter, name string, g *kbiplex.Graph, persist bool) {
	err := s.addGraph(name, g, persist)
	if err != nil {
		// The request itself was already validated (name, decoded graph),
		// so a catalog failure here is the server's fault — a full disk,
		// an unwritable data dir — not the client's. The one structural
		// case gets its own code: persist against a dir-less deployment.
		status := http.StatusInternalServerError
		if errors.Is(err, store.ErrNoDir) {
			status = http.StatusNotImplemented
		}
		writeError(w, status, err)
		return
	}
	s.proposePut(name, g, persist)
	writeJSON(w, http.StatusCreated, map[string]any{
		"name": name, "num_left": g.NumLeft(), "num_right": g.NumRight(), "num_edges": g.NumEdges(),
		"persisted": persist,
	})
}

// parseBoolParam reads an optional boolean query parameter.
func parseBoolParam(r *http.Request, key string) (bool, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("parameter %s: %w", key, err)
	}
	return b, nil
}

func (s *Server) handleGraphInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := s.catalog.Info(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		return
	}
	doc := map[string]any{
		"name": name, "num_left": info.NumLeft, "num_right": info.NumRight, "num_edges": info.NumEdges,
		"persisted": info.Persisted, "resident": info.Resident, "residency": info.Residency,
		"epoch": s.graphEpoch(name), "crc32": info.CRC32,
	}
	// Engine counters only exist while the engine is resident; a cold
	// (recovered or evicted) graph still answers from the manifest.
	if eng, ok := s.catalog.EngineIfResident(name); ok {
		st := eng.Stats()
		doc["queries"] = st.Queries
		doc["active_queries"] = st.Active
		doc["solutions_served"] = st.Solutions
		doc["cached_cores"] = st.CachedCores
		doc["core_cache_hits"] = st.CoreHits
		doc["core_cache_misses"] = st.CoreMisses
		doc["core_index_built"] = st.CoreIndexBuilt
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, hadInfo := s.catalog.Info(name)
	ok, err := s.catalog.Delete(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q", name))
		return
	}
	if hadInfo {
		s.invalidateResults(info.CRC32)
	}
	s.mut.Drop(name)
	s.propose(cluster.OpDelete, name, false, nil)
	w.WriteHeader(http.StatusNoContent)
}

// maxQueryParam bounds every numeric query parameter: far above any
// meaningful value, far below where downstream arithmetic could
// overflow.
const maxQueryParam = 1<<31 - 1

// queryFromURL parses the legacy query-parameter surface into the same
// kbiplex.Query document POST /v1/graphs/{name}/jobs accepts, so both
// generations decode through one path (Query.Validate, mirroring
// Options.normalize). Values are bounds-checked here so malformed
// requests fail with a 400 instead of leaking into normalization.
func queryFromURL(r *http.Request) (kbiplex.Query, error) {
	params := r.URL.Query()
	var q kbiplex.Query
	intField := func(key string, dst *int, minValue int) error {
		v := params.Get(key)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			if errors.Is(err, strconv.ErrRange) {
				return fmt.Errorf("parameter %s: value %s overflows", key, v)
			}
			return fmt.Errorf("parameter %s: %w", key, err)
		}
		if n < minValue {
			return fmt.Errorf("parameter %s must be at least %d, got %d", key, minValue, n)
		}
		if n > maxQueryParam {
			return fmt.Errorf("parameter %s must be at most %d, got %d", key, maxQueryParam, n)
		}
		*dst = n
		return nil
	}
	// workers alone may be negative: workers=-1 means "all cores" to the
	// parallel driver.
	for _, p := range []struct {
		key      string
		dst      *int
		minValue int
	}{
		{"k", &q.K, 1},
		{"k_left", &q.KLeft, 1},
		{"k_right", &q.KRight, 1},
		{"min_left", &q.MinLeft, 0},
		{"min_right", &q.MinRight, 0},
		{"max_results", &q.MaxResults, 0},
		{"workers", &q.Workers, -maxQueryParam},
		{"shards", &q.Shards, 0},
	} {
		if err := intField(p.key, p.dst, p.minValue); err != nil {
			return q, err
		}
	}
	alg, err := kbiplex.ParseAlgorithm(params.Get("algorithm"))
	if err != nil {
		return q, err
	}
	q.Algorithm = alg
	if v := params.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return q, fmt.Errorf("parameter deadline: want a non-negative duration like 30s, got %q", v)
		}
		q.Deadline = kbiplex.Duration(d)
	}
	return q, nil
}

// decodeQuery reads the kbiplex.Query document of a /v1 job submission,
// applying the same numeric bounds as the URL path.
func decodeQuery(w http.ResponseWriter, r *http.Request) (kbiplex.Query, error) {
	var q kbiplex.Query
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return q, fmt.Errorf("decoding query: %w", err)
	}
	for _, f := range []struct {
		name  string
		value int
	}{
		{"k", q.K}, {"k_left", q.KLeft}, {"k_right", q.KRight},
		{"min_left", q.MinLeft}, {"min_right", q.MinRight},
		{"max_results", q.MaxResults}, {"workers", q.Workers}, {"workers", -q.Workers},
		{"shards", q.Shards},
	} {
		if f.value > maxQueryParam {
			return q, fmt.Errorf("field %s must be at most %d", f.name, maxQueryParam)
		}
	}
	return q, nil
}

// solutionLine is one streamed NDJSON solution.
type solutionLine struct {
	L []int32 `json:"l"`
	R []int32 `json:"r"`
}

// summaryLine terminates an NDJSON stream: exactly one of Done or Error
// is set.
type summaryLine struct {
	Done      bool   `json:"done,omitempty"`
	Error     string `json:"error,omitempty"`
	Solutions int64  `json:"solutions"`
	Algorithm string `json:"algorithm,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// runQuery executes one decoded query against an engine, dispatching to
// the sharded runtime or the parallel driver when the query asks for
// shards or workers (and applying Config.DefaultShards to iTraversal
// queries that pick neither). Sharded queries on a cluster node with
// live peers fan out across the membership instead of across local
// goroutines — same solution set, reported through the same stats. It
// is the single execution path shared by the legacy streaming endpoint
// and the /v1 job runner; emit must be safe for concurrent use when
// shards or workers are requested.
func (s *Server) runQuery(ctx context.Context, eng *kbiplex.Engine, name string, q kbiplex.Query, emit func(kbiplex.Solution) bool) (kbiplex.Stats, error) {
	if d := time.Duration(q.Deadline); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if q.Shards == 0 && q.Workers == 0 && s.cfg.DefaultShards > 1 && q.Algorithm == kbiplex.ITraversal {
		q.Shards = s.cfg.DefaultShards
	}
	if q.Shards > 0 {
		if st, ok, err := s.clusterQuery(ctx, eng, name, q, emit); ok {
			s.recordDist(st)
			return st, err
		}
		st, err := eng.EnumerateSharded(ctx, q.Options(), emit)
		s.recordDist(st)
		return st, err
	}
	if q.Workers > 1 || q.Workers < 0 {
		return eng.EnumerateParallel(ctx, q.Options(), q.Workers, emit)
	}
	return eng.Enumerate(ctx, q.Options(), emit)
}

// shutdownCause rewrites a bare context cancellation to its cause when
// the cause is more informative (the drain path), so clients read
// "server shutting down" instead of "context canceled".
func shutdownCause(ctx context.Context, err error) error {
	if err == nil || !errors.Is(err, context.Canceled) {
		return err
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	return err
}

// Trailer names of the legacy streaming endpoint: the run's summary,
// duplicated from the NDJSON trailer line for clients that read headers
// rather than frames.
const (
	trailerSolutions  = "X-Kbiplex-Solutions"
	trailerAlgorithm  = "X-Kbiplex-Algorithm"
	trailerDurationMS = "X-Kbiplex-Duration-Ms"
	trailerStatus     = "X-Kbiplex-Status"
)

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	q, err := queryFromURL(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject unrunnable queries while a clean status code is still
	// possible; past this point errors travel in the NDJSON trailer.
	if err := q.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	if s.redirectToOwner(w, r, name) {
		return
	}
	key, cacheable := s.cacheKey(name, q)
	if cacheable {
		// The cache is consulted before the engine is even resolved: a
		// fully cached repeat query never hydrates an evicted graph, let
		// alone plans a traversal.
		etag := key.ETag()
		if etagMatches(r.Header.Get("If-None-Match"), etag) && s.results.Contains(key) {
			s.queries.Add(1)
			setCachedHeaders(w, etag, "hit")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		// A truncated entry was clamped by the job manager's spool cap,
		// which is not this endpoint's bound — run it fresh instead of
		// replaying a cut that does not apply here.
		if ent, ok := s.results.Get(key); ok && !ent.Truncated {
			s.queries.Add(1)
			s.streamCachedEnumeration(w, etag, ent)
			return
		}
	}
	eng, ok := s.engine(w, name)
	if !ok {
		return
	}
	s.queries.Add(1)
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	w.Header().Set("Trailer", strings.Join([]string{trailerSolutions, trailerAlgorithm, trailerDurationMS, trailerStatus}, ", "))
	w.Header().Set("Content-Type", "application/x-ndjson")
	if cacheable {
		setCachedHeaders(w, key.ETag(), "miss")
	}
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	// A clean completion is a cache admission: collect the stream while
	// it stays under the cache's per-entry cap, and stop collecting (not
	// streaming) past it.
	var collected []kbiplex.Solution
	var collectedBytes int64
	collecting := cacheable

	start := time.Now()
	var streamErr error
	var mu sync.Mutex // the parallel driver calls emit from many goroutines
	emit := func(sol kbiplex.Solution) bool {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(solutionLine{L: sol.L, R: sol.R}); err != nil {
			streamErr = err
			return false
		}
		if collecting {
			collectedBytes += rescache.SolutionBytes(sol)
			if collectedBytes > s.results.MaxEntryBytes() {
				collecting, collected = false, nil
			} else {
				collected = append(collected, sol)
			}
		}
		s.streamed.Add(1)
		// Flush per solution: enumeration delay, not buffering, should
		// govern when the client sees the next result.
		rc.Flush()
		return true
	}

	st, err := s.runQuery(ctx, eng, name, q, emit)
	if err == nil {
		err = streamErr
	}
	err = shutdownCause(ctx, err)
	if err == nil && collecting {
		s.results.Put(rescache.Entry{Key: key, Solutions: collected, Stats: st})
	}

	sum := summaryLine{
		Solutions: st.Solutions,
		Algorithm: st.Algorithm.String(),
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	status := "done"
	if err != nil {
		sum.Error = err.Error()
		status = "error"
	} else {
		sum.Done = true
	}
	w.Header().Set(trailerSolutions, strconv.FormatInt(st.Solutions, 10))
	w.Header().Set(trailerAlgorithm, st.Algorithm.String())
	w.Header().Set(trailerDurationMS, strconv.FormatInt(st.Duration.Milliseconds(), 10))
	w.Header().Set(trailerStatus, status)
	enc.Encode(sum)
	rc.Flush()
}

// setCachedHeaders stamps the conditional-request surface of a
// cacheable enumeration response: the key's strong ETag, the hit/miss
// verdict, and a Cache-Control that keeps revalidation with the origin
// (results are immutable per ETag, but graph replacement mints new
// ones).
func setCachedHeaders(w http.ResponseWriter, etag, verdict string) {
	w.Header().Set("ETag", etag)
	w.Header().Set(headerCache, verdict)
	w.Header().Set("Cache-Control", "private, must-revalidate")
}

// streamCachedEnumeration answers the legacy enumerate surface from a
// cached spool: the same NDJSON frames and trailers, zero engine work.
func (s *Server) streamCachedEnumeration(w http.ResponseWriter, etag string, ent rescache.Entry) {
	w.Header().Set("Trailer", strings.Join([]string{trailerSolutions, trailerAlgorithm, trailerDurationMS, trailerStatus}, ", "))
	w.Header().Set("Content-Type", "application/x-ndjson")
	setCachedHeaders(w, etag, "hit")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	start := time.Now()
	for _, sol := range ent.Solutions {
		if err := enc.Encode(solutionLine{L: sol.L, R: sol.R}); err != nil {
			return
		}
		s.streamed.Add(1)
	}
	n := int64(len(ent.Solutions))
	w.Header().Set(trailerSolutions, strconv.FormatInt(n, 10))
	w.Header().Set(trailerAlgorithm, ent.Stats.Algorithm.String())
	w.Header().Set(trailerDurationMS, strconv.FormatInt(time.Since(start).Milliseconds(), 10))
	w.Header().Set(trailerStatus, "done")
	enc.Encode(summaryLine{
		Done: true, Solutions: n,
		Algorithm: ent.Stats.Algorithm.String(),
		ElapsedMS: time.Since(start).Milliseconds(),
	})
	rc.Flush()
}

func (s *Server) handleLargest(w http.ResponseWriter, r *http.Request) {
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxQueryParam {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter k must be a positive integer at most %d", maxQueryParam))
			return
		}
		k = n
	}
	name := r.PathValue("name")
	if s.redirectToOwner(w, r, name) {
		return
	}
	eng, ok := s.engine(w, name)
	if !ok {
		return
	}
	s.queries.Add(1)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	sol, found, err := eng.LargestBalanced(ctx, k)
	if err != nil {
		status := http.StatusInternalServerError
		// Covers both the client hanging up and the engine's own
		// per-query deadline: a configured budget is not a server fault.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusRequestTimeout
		}
		writeError(w, status, err)
		return
	}
	resp := map[string]any{
		"found":      found,
		"elapsed_ms": time.Since(start).Milliseconds(),
	}
	if found {
		resp["l"] = sol.L
		resp["r"] = sol.R
		resp["balanced_size"] = min(len(sol.L), len(sol.R))
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
