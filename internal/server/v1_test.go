package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	kbiplex "repro"
	"repro/internal/biplex"
	"repro/internal/jobs"
)

// submitJob posts a query document and decodes the accepted job doc.
func submitJob(t *testing.T, ts *httptest.Server, graph, query string) jobDoc {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/graphs/"+graph+"/jobs", "application/json", strings.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var doc jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID == "" {
		t.Fatalf("submit returned no job id: %+v", doc)
	}
	return doc
}

// readResults drains one results response from the given cursor,
// returning the solutions seen and the final trailer.
func readResults(t *testing.T, ts *httptest.Server, id string, cursor int64) ([]kbiplex.Solution, resultsTrailer) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/results?cursor=%d", ts.URL, id, cursor))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	var sols []kbiplex.Solution
	var trailer resultsTrailer
	sawTrailer := false
	next := cursor
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			resultLine
			resultsTrailer
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.State != "" {
			trailer, sawTrailer = line.resultsTrailer, true
			continue
		}
		if line.Seq != next {
			t.Fatalf("out-of-order line: seq %d, want %d", line.Seq, next)
		}
		next++
		sols = append(sols, kbiplex.Solution{L: line.resultLine.L, R: line.resultLine.R})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("results stream ended without a trailer frame")
	}
	return sols, trailer
}

// TestJobLifecycle: submit → status → full results → delete.
func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	doc := submitJob(t, ts, "er", `{"k":1}`)
	if doc.Graph != "er" || doc.Query.K != 1 {
		t.Fatalf("echoed job doc: %+v", doc)
	}

	sols, trailer := readResults(t, ts, doc.ID, 0)
	if !trailer.Done || trailer.State != jobs.StateDone || trailer.NextCursor != int64(len(want)) {
		t.Fatalf("trailer: %+v (want done at cursor %d)", trailer, len(want))
	}
	if len(sols) != len(want) {
		t.Fatalf("streamed %d solutions, want %d", len(sols), len(want))
	}
	biplex.SortPairs(sols)
	for i := range sols {
		if !sols[i].Equal(want[i]) {
			t.Fatalf("solution %d differs: %v vs %v", i, sols[i], want[i])
		}
	}

	var status jobDoc
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+doc.ID, &status); resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	if status.State != jobs.StateDone || status.Results != int64(len(want)) || status.Stats == nil {
		t.Fatalf("terminal status doc: %+v", status)
	}
	if status.Stats.Solutions != int64(len(want)) || status.Stats.Algorithm != kbiplex.ITraversal || status.Stats.DurationMS < 0 {
		t.Fatalf("status stats: %+v", status.Stats)
	}

	// DELETE removes the finished job; the id stops resolving.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+doc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete finished job: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+doc.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job still resolves: %d", resp.StatusCode)
	}
}

// TestJobShardsQuery checks the /v1 JSON document layer accepts and
// reports shards: a sharded job runs to the sequential solution set and
// echoes shards in its query document; malformed shard counts are
// rejected at decode/validate time with 400.
func TestJobShardsQuery(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}

	doc := submitJob(t, ts, "er", `{"k":1,"shards":3}`)
	if doc.Query.Shards != 3 {
		t.Fatalf("job doc does not report shards: %+v", doc.Query)
	}
	sols, trailer := readResults(t, ts, doc.ID, 0)
	if !trailer.Done || len(sols) != len(want) {
		t.Fatalf("sharded job delivered %d solutions (done=%v), want %d", len(sols), trailer.Done, len(want))
	}
	biplex.SortPairs(sols)
	for i := range sols {
		if !sols[i].Equal(want[i]) {
			t.Fatalf("solution %d differs: %v vs %v", i, sols[i], want[i])
		}
	}
	var status jobDoc
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+doc.ID, &status); resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	if status.Query.Shards != 3 {
		t.Fatalf("terminal status doc lost shards: %+v", status.Query)
	}

	for _, body := range []string{
		`{"k":1,"shards":-1}`,
		`{"k":1,"shards":2147483648}`,
		`{"k":1,"shards":2,"workers":2}`,
		`{"k":1,"shards":2,"algorithm":"btraversal"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/graphs/er/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestJobResultsCursorResume is the cursor-semantics test: kill the
// results connection mid-stream, resume from cursor=N, and the
// concatenation must be exactly the uninterrupted run.
func TestJobResultsCursorResume(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 6 {
		t.Fatalf("graph too small for a resume test: %d solutions", len(want))
	}
	doc := submitJob(t, ts, "er", `{"k":1}`)

	// First connection: read three solution lines, then hang up.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+doc.ID+"/results", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var prefix []kbiplex.Solution
	var next int64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && len(prefix) < 3 {
		var line resultLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, kbiplex.Solution{L: line.L, R: line.R})
		next = line.Seq + 1
	}
	cancel() // simulated mid-stream disconnect
	resp.Body.Close()
	if len(prefix) != 3 {
		t.Fatalf("read %d lines before the cut, want 3", len(prefix))
	}

	// Second connection resumes at the cursor; no solutions are lost or
	// repeated.
	suffix, trailer := readResults(t, ts, doc.ID, next)
	if !trailer.Done {
		t.Fatalf("resumed stream did not finish: %+v", trailer)
	}
	got := append(prefix, suffix...)
	if len(got) != len(want) {
		t.Fatalf("prefix+suffix has %d solutions, want %d", len(got), len(want))
	}
	biplex.SortPairs(got)
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("solution %d differs after resume: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestJobAdmissionControl: a full queue answers 429, an unknown graph
// 404, malformed documents 400.
func TestJobAdmissionControl(t *testing.T) {
	ts := newTestServer(t, Config{
		Jobs: jobs.Config{Workers: 1, QueueDepth: 1},
	})
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)

	submitJob(t, ts, "big", `{"k":1}`) // occupies the worker
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st struct {
			Jobs struct {
				Running int `json:"running"`
			} `json:"jobs"`
		}
		getJSON(t, ts.URL+"/stats", &st)
		if st.Jobs.Running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	submitJob(t, ts, "big", `{"k":1}`) // occupies the queue slot

	resp, err := http.Post(ts.URL+"/v1/graphs/big/jobs", "application/json", strings.NewReader(`{"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull queue: status %d, want 429", resp.StatusCode)
	}

	for body, want := range map[string]int{
		`{"k":-1}`:                        http.StatusBadRequest,
		`{"max_results":-1}`:              http.StatusBadRequest,
		`{"deadline":"-3s"}`:              http.StatusBadRequest,
		`{"frobnicate":1}`:                http.StatusBadRequest, // unknown field
		`{"workers":4,"algorithm":"imb"}`: http.StatusBadRequest,
		`{"k":2147483648}`:                http.StatusBadRequest, // > 2^31-1
	} {
		resp, err := http.Post(ts.URL+"/v1/graphs/big/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("submit %s: status %d, want %d", body, resp.StatusCode, want)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/graphs/nope/jobs", "application/json", strings.NewReader(`{"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("job against unknown graph: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/j00000001/results?cursor=-2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative cursor: status %d, want 400", resp.StatusCode)
	}
}

// TestJobCancel: DELETE on a running job cancels it; the follower
// stream ends with a canceled trailer, not a hang.
func TestJobCancel(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)
	doc := submitJob(t, ts, "big", `{"k":1}`)

	done := make(chan resultsTrailer, 1)
	go func() {
		_, trailer := readResults(t, ts, doc.ID, 0)
		done <- trailer
	}()
	// Give the stream a moment to attach, then cancel the job.
	time.Sleep(50 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+doc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var afterCancel jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&afterCancel); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	select {
	case trailer := <-done:
		if trailer.Done || trailer.State != jobs.StateCanceled {
			t.Fatalf("follower trailer after cancel: %+v", trailer)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("results stream did not end after job cancel")
	}
	var status jobDoc
	getJSON(t, ts.URL+"/v1/jobs/"+doc.ID, &status)
	if status.State != jobs.StateCanceled {
		t.Fatalf("canceled job state: %v", status.State)
	}
}

// TestShutdownDrainsStreams is the drain regression test: a slow client
// in the middle of a long NDJSON enumeration must receive an error
// frame naming the shutdown — not a silent TCP cut — when the server
// begins shutting down.
func TestShutdownDrainsStreams(t *testing.T) {
	ts, srv := newTestServerPair(t, Config{})
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)

	resp, err := http.Get(ts.URL + "/graphs/big/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	// A slow client: read a few lines, then dawdle while the server
	// decides to shut down.
	for i := 0; i < 3 && sc.Scan(); i++ {
	}
	srv.BeginShutdown()

	var last string
	for sc.Scan() {
		last = sc.Text()
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream cut without a final frame: %v", err)
	}
	var sum summaryLine
	if err := json.Unmarshal([]byte(last), &sum); err != nil {
		t.Fatalf("last frame %q: %v", last, err)
	}
	if sum.Done || !strings.Contains(sum.Error, "shutting down") {
		t.Fatalf("want a shutting-down error frame, got %+v", sum)
	}

	// New job submissions are refused while draining.
	resp2, err := http.Post(ts.URL+"/v1/graphs/big/jobs", "application/json", strings.NewReader(`{"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp2.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "draining" {
		t.Fatalf("healthz while draining: %q", health.Status)
	}
}

// TestEnumerateTrailers: the legacy streaming endpoint announces and
// fills the X-Kbiplex-* HTTP trailers.
func TestEnumerateTrailers(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "er", 12, 12, 2, 3)
	g := kbiplex.RandomBipartite(12, 12, 2, 3)
	want, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/graphs/er/enumerate?k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Trailers are only visible after the body is fully read.
	if got := resp.Trailer.Get(trailerSolutions); got != fmt.Sprint(len(want)) {
		t.Fatalf("%s = %q, want %d", trailerSolutions, got, len(want))
	}
	if got := resp.Trailer.Get(trailerAlgorithm); got != "iTraversal" {
		t.Fatalf("%s = %q", trailerAlgorithm, got)
	}
	if got := resp.Trailer.Get(trailerStatus); got != "done" {
		t.Fatalf("%s = %q", trailerStatus, got)
	}
	if resp.Trailer.Get(trailerDurationMS) == "" {
		t.Fatalf("%s missing", trailerDurationMS)
	}
}

// TestV1GraphAliases: the graph-management surface is mounted under /v1
// too, so /v1-only clients never touch unversioned paths.
func TestV1GraphAliases(t *testing.T) {
	ts := newTestServer(t, Config{})
	body := `{"name":"er","random":{"num_left":8,"num_right":8,"density":1.5,"seed":4}}`
	resp, err := http.Post(ts.URL+"/v1/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("v1 load: status %d", resp.StatusCode)
	}
	var list []graphInfo
	getJSON(t, ts.URL+"/v1/graphs", &list)
	if len(list) != 1 || list[0].Name != "er" {
		t.Fatalf("v1 list: %+v", list)
	}
	if n := countStreamed(t, ts.URL+"/v1/graphs/er/enumerate?k=1"); n == 0 {
		t.Fatal("v1 enumerate streamed nothing")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/er", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("v1 delete: status %d", resp.StatusCode)
	}
}

// TestConcurrentJobTraffic exercises submit/status/results/cancel from
// many goroutines against one server — the HTTP-level companion of the
// jobs package's race test.
func TestConcurrentJobTraffic(t *testing.T) {
	ts := newTestServer(t, Config{Jobs: jobs.Config{Workers: 4, QueueDepth: 64}})
	loadRandomGraph(t, ts, "er", 15, 15, 2, 5)
	doc := submitJob(t, ts, "er", `{"k":1}`)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			readResults(t, ts, doc.ID, 0)
		}()
		go func() {
			defer wg.Done()
			d := submitJob(t, ts, "er", `{"k":1,"max_results":5}`)
			readResults(t, ts, d.ID, 0)
		}()
		go func() {
			defer wg.Done()
			getJSON(t, ts.URL+"/v1/jobs/"+doc.ID, nil)
			getJSON(t, ts.URL+"/v1/jobs", nil)
		}()
	}
	wg.Wait()
}

// TestLegacyDeadlineParam: the legacy adapter accepts the same deadline
// the Query document carries, proving the one-decode-path claim.
func TestLegacyDeadlineParam(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "big", 150, 150, 4, 9)
	resp, err := http.Get(ts.URL + "/graphs/big/enumerate?k=1&deadline=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last summaryLine
	sawSummary := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line summaryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done || line.Error != "" {
			last, sawSummary = line, true
		}
	}
	if !sawSummary || last.Done || !strings.Contains(last.Error, "deadline") {
		t.Fatalf("want a deadline-error trailer, got %+v (seen %v)", last, sawSummary)
	}
	resp2, err := http.Get(ts.URL + "/graphs/big/enumerate?k=1&deadline=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus deadline: status %d, want 400", resp2.StatusCode)
	}
}
