package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	kbiplex "repro"
	"repro/internal/bigraph"
)

// postMutation sends one mutation body and decodes the response.
func postMutation(t *testing.T, ts *httptest.Server, name, body string) (mutationDoc, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/graphs/"+name+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return mutationDoc{}, resp.StatusCode
	}
	var doc mutationDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc, resp.StatusCode
}

// collectStream gathers every solution of a legacy enumerate stream.
func collectStream(t *testing.T, url string) []kbiplex.Solution {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var sols []kbiplex.Solution
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			solutionLine
			summaryLine
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done || line.Error != "" {
			if line.Error != "" {
				t.Fatalf("stream error: %s", line.Error)
			}
			continue
		}
		sols = append(sols, kbiplex.Solution{L: line.L, R: line.R})
	}
	return sols
}

func solutionSet(sols []kbiplex.Solution) map[string]bool {
	set := make(map[string]bool, len(sols))
	for _, s := range sols {
		set[fmt.Sprint(s.L, s.R)] = true
	}
	return set
}

func sameSolutions(a, b []kbiplex.Solution) bool {
	as, bs := solutionSet(a), solutionSet(b)
	if len(as) != len(bs) {
		return false
	}
	for k := range as {
		if !bs[k] {
			return false
		}
	}
	return true
}

// graphEpochDoc reads a graph's epoch from its info document.
func graphEpochDoc(t *testing.T, ts *httptest.Server, name string) uint64 {
	t.Helper()
	var doc map[string]any
	resp := getJSON(t, ts.URL+"/graphs/"+name, &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph info: status %d", resp.StatusCode)
	}
	return uint64(doc["epoch"].(float64))
}

// TestMutateRoundTrip inserts and deletes edges through /v1 and checks
// fresh enumerations track the mutated content exactly.
func TestMutateRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "dyn", 10, 10, 2, 7)
	g := kbiplex.RandomBipartite(10, 10, 2, 7)

	// A batch with one real insert, one duplicate and one delete.
	edits := []bigraph.Edit{{V: 0, U: 0}, {V: 0, U: 0}, {Del: true, V: 1, U: 1}}
	want, res, err := bigraph.ApplyEdits(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	doc, status := postMutation(t, ts, "dyn",
		`{"ops":[{"op":"insert","l":0,"r":0},{"op":"insert","l":0,"r":0},{"op":"delete","l":1,"r":1}]}`)
	if status != http.StatusOK {
		t.Fatalf("mutation status %d", status)
	}
	if doc.Epoch != 1 || doc.Applied != res.Inserted+res.Deleted || doc.Noops != res.Noops {
		t.Fatalf("mutation doc %+v, want epoch 1 applied %d noops %d", doc, res.Inserted+res.Deleted, res.Noops)
	}
	if doc.NumEdges != want.NumEdges() {
		t.Fatalf("num_edges = %d, want %d", doc.NumEdges, want.NumEdges())
	}
	if epoch := graphEpochDoc(t, ts, "dyn"); epoch != 1 {
		t.Fatalf("graph info epoch = %d", epoch)
	}

	wantSols, _, err := kbiplex.EnumerateAll(want, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := collectStream(t, ts.URL+"/graphs/dyn/enumerate?k=1")
	if !sameSolutions(got, wantSols) {
		t.Fatalf("post-mutation enumeration: got %d solutions, want %d", len(got), len(wantSols))
	}

	// A single-op body uses the inline form; a second delete of the same
	// edge is a noop but still advances the epoch.
	if doc, _ := postMutation(t, ts, "dyn", `{"op":"delete","l":1,"r":1}`); doc.Epoch != 2 || doc.Noops != 1 || doc.Applied != 0 {
		t.Fatalf("noop mutation doc %+v", doc)
	}
}

func TestMutateValidation(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "g", 4, 4, 1, 1)
	for _, tc := range []struct {
		name, graph, body string
		want              int
	}{
		{"unknown graph", "nope", `{"op":"insert","l":0,"r":0}`, http.StatusNotFound},
		{"bad op", "g", `{"op":"upsert","l":0,"r":0}`, http.StatusBadRequest},
		{"single and batch", "g", `{"op":"insert","l":0,"r":0,"ops":[{"op":"insert","l":1,"r":1}]}`, http.StatusBadRequest},
		{"neither", "g", `{}`, http.StatusBadRequest},
		{"missing coordinate", "g", `{"op":"insert","l":0}`, http.StatusBadRequest},
		{"negative id", "g", `{"op":"insert","l":-1,"r":0}`, http.StatusBadRequest},
		{"unknown field", "g", `{"op":"insert","l":0,"r":0,"weight":2}`, http.StatusBadRequest},
	} {
		if _, status := postMutation(t, ts, tc.graph, tc.body); status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		}
	}
	if epoch := graphEpochDoc(t, ts, "g"); epoch != 0 {
		t.Fatalf("rejected mutations advanced the epoch to %d", epoch)
	}
}

// TestMutateInvalidatesResultCache primes the result cache, mutates, and
// checks the next enumeration is a miss with the new content.
func TestMutateInvalidatesResultCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "c", 10, 10, 2, 3)
	url := ts.URL + "/graphs/c/enumerate?k=1"

	verdict := func() string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		bufio.NewScanner(resp.Body).Scan()
		v := resp.Header.Get(headerCache)
		resp.Body.Close()
		return v
	}
	if v := verdict(); v != "miss" {
		t.Fatalf("first query: cache %q", v)
	}
	if v := verdict(); v != "hit" {
		t.Fatalf("repeat query: cache %q", v)
	}
	// Inserting beyond the current right side is never a noop, so the
	// content CRC is guaranteed to change.
	if doc, status := postMutation(t, ts, "c", `{"op":"insert","l":0,"r":20}`); status != http.StatusOK || doc.Inserted != 1 {
		t.Fatalf("mutation: status %d doc %+v", status, doc)
	}
	if v := verdict(); v != "miss" {
		t.Fatalf("post-mutation query: cache %q, want miss", v)
	}
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	rc := stats["result_cache"].(map[string]any)
	if rc["invalidated"].(float64) < 1 {
		t.Fatalf("result cache reports no invalidations: %v", rc)
	}
	mu := stats["mutations"].(map[string]any)
	if mu["batches"].(float64) != 1 || mu["ops"].(float64) != 1 {
		t.Fatalf("mutation stats %v", mu)
	}
}

// TestJobPinsSubmissionEpoch submits a job, mutates the graph, and
// checks the job's spool matches the content at its submission epoch
// while a fresh query sees the mutation.
func TestJobPinsSubmissionEpoch(t *testing.T) {
	ts := newTestServer(t, Config{})
	loadRandomGraph(t, ts, "pin", 12, 12, 2, 5)
	g := kbiplex.RandomBipartite(12, 12, 2, 5)

	resp, err := http.Post(ts.URL+"/v1/graphs/pin/jobs", "application/json", strings.NewReader(`{"k":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var job jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.Epoch != 0 {
		t.Fatalf("submit: status %d doc %+v", resp.StatusCode, job)
	}

	// Mutate immediately: whether the job has started or not, it runs on
	// the engine captured at submission.
	edits := []bigraph.Edit{{Del: true, V: 0, U: g.NeighL(0)[0]}}
	if doc, status := postMutation(t, ts, "pin",
		fmt.Sprintf(`{"op":"delete","l":0,"r":%d}`, g.NeighL(0)[0])); status != http.StatusOK || doc.Deleted != 1 {
		t.Fatalf("mutation: status %d doc %+v", status, doc)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+job.ID, &job)
		if job.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.Error != "" {
		t.Fatalf("job failed: %s", job.Error)
	}

	// The spool is the pre-mutation enumeration...
	wantOld, _, err := kbiplex.EnumerateAll(g, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	var spool []kbiplex.Solution
	res, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		var line resultLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.L == nil && line.R == nil {
			continue // trailer
		}
		spool = append(spool, kbiplex.Solution{L: line.L, R: line.R})
	}
	res.Body.Close()
	if !sameSolutions(spool, wantOld) {
		t.Fatalf("job spool has %d solutions, want the submission epoch's %d", len(spool), len(wantOld))
	}

	// ...while a fresh query reflects the mutation.
	ng, _, err := bigraph.ApplyEdits(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	wantNew, _, err := kbiplex.EnumerateAll(ng, kbiplex.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	fresh := collectStream(t, ts.URL+"/graphs/pin/enumerate?k=1")
	if !sameSolutions(fresh, wantNew) {
		t.Fatalf("fresh query has %d solutions, want the mutated graph's %d", len(fresh), len(wantNew))
	}
	if sameSolutions(fresh, wantOld) {
		t.Fatal("mutation changed nothing the test can observe; pick a different edit")
	}
}

// loadPersistedEdges loads a small persisted graph from explicit edges.
func loadPersistedEdges(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"num_left":4,"num_right":4,"edges":[[0,0],[0,1],[1,0],[1,1],[2,2],[3,3]],"persist":true}`, name)
	resp, err := http.Post(ts.URL+"/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("loading graph: status %d", resp.StatusCode)
	}
}

// TestMutateRestartReplaysJournal kills the server after uncompacted
// mutations and checks the restart replays the journal to the same
// epoch and content.
func TestMutateRestartReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir}

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	loadPersistedEdges(t, ts, "wal")
	if doc, status := postMutation(t, ts, "wal", `{"ops":[{"op":"insert","l":2,"r":3},{"op":"delete","l":0,"r":0}]}`); status != http.StatusOK || doc.Epoch != 1 {
		t.Fatalf("mutation: %d %+v", status, doc)
	}
	if doc, status := postMutation(t, ts, "wal", `{"op":"insert","l":3,"r":2}`); status != http.StatusOK || doc.Epoch != 2 {
		t.Fatalf("mutation: %d %+v", status, doc)
	}
	wantSols := collectStream(t, ts.URL+"/graphs/wal/enumerate?k=1")
	wantEdges := 6 + 2 - 1
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal", "wal.wal")); err != nil {
		t.Fatalf("journal file missing after close: %v", err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if epoch := graphEpochDoc(t, ts2, "wal"); epoch != 2 {
		t.Fatalf("restart epoch = %d, want 2", epoch)
	}
	var info map[string]any
	getJSON(t, ts2.URL+"/graphs/wal", &info)
	if int(info["num_edges"].(float64)) != wantEdges {
		t.Fatalf("restart num_edges = %v, want %d", info["num_edges"], wantEdges)
	}
	got := collectStream(t, ts2.URL+"/graphs/wal/enumerate?k=1")
	if !sameSolutions(got, wantSols) {
		t.Fatalf("restart enumeration differs: %d vs %d solutions", len(got), len(wantSols))
	}
	var stats map[string]any
	getJSON(t, ts2.URL+"/stats", &stats)
	mu := stats["mutations"].(map[string]any)
	if mu["replayed_ops"].(float64) != 3 {
		t.Fatalf("replayed_ops = %v, want 3", mu["replayed_ops"])
	}
}

// TestMutateCompaction drives the delta past the threshold and checks
// the journal resets while epoch, content and cache identity survive a
// restart.
func TestMutateCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, JournalCompactOps: 2}

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	loadPersistedEdges(t, ts, "cp")
	if doc, _ := postMutation(t, ts, "cp", `{"op":"insert","l":2,"r":3}`); doc.Compacted {
		t.Fatalf("compacted below threshold: %+v", doc)
	}
	doc, _ := postMutation(t, ts, "cp", `{"op":"insert","l":3,"r":2}`)
	if !doc.Compacted {
		t.Fatalf("threshold crossing did not compact: %+v", doc)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if epoch := graphEpochDoc(t, ts2, "cp"); epoch != 2 {
		t.Fatalf("restart epoch = %d, want 2", epoch)
	}
	var stats map[string]any
	getJSON(t, ts2.URL+"/stats", &stats)
	mu := stats["mutations"].(map[string]any)
	// The delta was folded into the base snapshot: nothing replays.
	if mu["replayed_ops"].(float64) != 0 {
		t.Fatalf("replayed_ops = %v after compaction", mu["replayed_ops"])
	}
	var info map[string]any
	getJSON(t, ts2.URL+"/graphs/cp", &info)
	if int(info["num_edges"].(float64)) != 8 {
		t.Fatalf("restart num_edges = %v, want 8", info["num_edges"])
	}
}

// TestMutateTornJournalBoot corrupts the journal tail between runs; the
// boot must quarantine the tail and recover the good prefix.
func TestMutateTornJournalBoot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir}

	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	loadPersistedEdges(t, ts, "torn")
	postMutation(t, ts, "torn", `{"op":"insert","l":2,"r":3}`)
	postMutation(t, ts, "torn", `{"op":"insert","l":3,"r":2}`)
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "journal", "torn.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	if epoch := graphEpochDoc(t, ts2, "torn"); epoch != 2 {
		t.Fatalf("epoch after torn-tail recovery = %d, want 2", epoch)
	}
	var stats map[string]any
	getJSON(t, ts2.URL+"/stats", &stats)
	mu := stats["mutations"].(map[string]any)
	if mu["truncated_tails"].(float64) != 1 {
		t.Fatalf("truncated_tails = %v, want 1", mu["truncated_tails"])
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	var info map[string]any
	getJSON(t, ts2.URL+"/graphs/torn", &info)
	if int(info["num_edges"].(float64)) != 8 {
		t.Fatalf("recovered num_edges = %v, want 8", info["num_edges"])
	}
}

// TestReplaceAndDeleteDropJournal checks both paths that retire a
// graph's content also retire its mutation history.
func TestReplaceAndDeleteDropJournal(t *testing.T) {
	dir := t.TempDir()
	ts, srv := newTestServerPair(t, Config{DataDir: dir})
	loadPersistedEdges(t, ts, "r")
	postMutation(t, ts, "r", `{"op":"insert","l":2,"r":3}`)
	if !srv.mut.HasJournal("r") {
		t.Fatal("no journal after mutation")
	}

	// Replacing the graph restarts its history at epoch 0.
	loadPersistedEdges(t, ts, "r")
	if srv.mut.HasJournal("r") {
		t.Fatal("journal survived replace")
	}
	if epoch := graphEpochDoc(t, ts, "r"); epoch != 0 {
		t.Fatalf("epoch after replace = %d", epoch)
	}

	postMutation(t, ts, "r", `{"op":"insert","l":2,"r":3}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/graphs/r", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if srv.mut.HasJournal("r") {
		t.Fatal("journal survived delete")
	}
}
