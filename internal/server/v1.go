// The /v1 job surface: enumeration as first-class, resumable jobs.
//
// A submission POSTs a typed kbiplex.Query JSON document; the job
// manager (internal/jobs) admits it into a bounded worker pool and
// spools its solutions under monotonically increasing sequence numbers.
// Status is polled at GET /v1/jobs/{id}; results stream as NDJSON from
// GET /v1/jobs/{id}/results?cursor=N, where each line carries its
// sequence number so a disconnected client resumes from exactly the
// first line it did not durably receive.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	kbiplex "repro"
	"repro/internal/jobs"
	"repro/internal/rescache"
)

// jobStats is the finished run's summary inside a job document.
type jobStats struct {
	Solutions  int64             `json:"solutions"`
	Algorithm  kbiplex.Algorithm `json:"algorithm"`
	DurationMS int64             `json:"duration_ms"`
}

// jobDoc is the job-status wire document.
type jobDoc struct {
	ID    string        `json:"id"`
	Graph string        `json:"graph"`
	State jobs.State    `json:"state"`
	Query kbiplex.Query `json:"query"`
	// Results is the spool length so far; it is also the lowest cursor
	// with nothing (yet) behind it.
	Results   int64 `json:"results"`
	Truncated bool  `json:"truncated,omitempty"`
	// Epoch is the graph's mutation epoch at submission: the content
	// version this job's results are consistent with. A mutation racing
	// the job advances the graph past this epoch without disturbing the
	// job's snapshot.
	Epoch    uint64     `json:"epoch"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created_at"`
	Started  *time.Time `json:"started_at,omitempty"`
	Finished *time.Time `json:"finished_at,omitempty"`
	Stats    *jobStats  `json:"stats,omitempty"`
}

func jobDocFrom(snap jobs.Snapshot) jobDoc {
	doc := jobDoc{
		ID: snap.ID, Graph: snap.Graph, State: snap.State, Query: snap.Query,
		Results: snap.Results, Truncated: snap.Truncated, Epoch: snap.Epoch, Created: snap.Created,
	}
	if snap.Err != nil {
		doc.Error = snap.Err.Error()
	}
	if !snap.Started.IsZero() {
		doc.Started = &snap.Started
	}
	if !snap.Finished.IsZero() {
		doc.Finished = &snap.Finished
		doc.Stats = &jobStats{
			Solutions:  snap.Stats.Solutions,
			Algorithm:  snap.Stats.Algorithm,
			DurationMS: snap.Stats.Duration.Milliseconds(),
		}
	}
	return doc
}

// jobError maps the jobs package's sentinel errors to HTTP statuses.
func jobError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrTooManyJobs):
		status = http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrDraining):
		status = http.StatusServiceUnavailable
	}
	writeError(w, status, err)
}

// handleSubmitJob admits one Query document as a job against a graph.
//
// The result cache sits in front of the planner here: a hit births the
// job already done with the cached spool (no queue, no engine, not even
// a hydration), a revalidation (If-None-Match carrying the entry's
// ETag) short-circuits to 304 without creating a job at all, and a miss
// runs normally with an on-completion hook that admits the finished
// spool for the next repeat.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	q, err := decodeQuery(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := q.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	key, cacheable := s.cacheKey(name, q)
	if cacheable {
		etag := key.ETag()
		if etagMatches(r.Header.Get("If-None-Match"), etag) && s.results.Contains(key) {
			s.queries.Add(1)
			setCachedHeaders(w, etag, "hit")
			w.WriteHeader(http.StatusNotModified)
			return
		}
		// A spool longer than this manager's cap cannot have come from
		// it (the legacy surface admitted it under a looser bound);
		// replaying it would overshoot the cap, so run fresh instead.
		if ent, ok := s.results.Get(key); ok && len(ent.Solutions) <= s.jobs.SpoolCap() {
			job, err := s.jobs.SubmitCached(name, q, ent.Solutions, ent.Stats, ent.Truncated,
				jobs.SubmitOptions{Epoch: s.graphEpoch(name)})
			if err != nil {
				jobError(w, err)
				return
			}
			s.queries.Add(1)
			setCachedHeaders(w, etag, "hit")
			w.Header().Set("Location", "/v1/jobs/"+job.ID())
			writeJSON(w, http.StatusAccepted, jobDocFrom(job.Snapshot()))
			return
		}
	}
	eng, ok := s.engine(w, name)
	if !ok {
		return
	}
	s.queries.Add(1)
	// Stamp the epoch the job's engine reference pins. The read is not
	// atomic with the engine resolution above, so a mutation racing this
	// submission can skew the label by one; the spool itself is always
	// internally consistent — it streams from exactly one engine.
	opts := jobs.SubmitOptions{Epoch: s.graphEpoch(name)}
	if c := q.Canonical(); c.MaxResults > 0 && c.MaxResults <= fastResultsCap {
		// Small-capped queries take the fast tier: they finish quickly
		// and must not wait behind cold full enumerations.
		opts.Tier = jobs.TierFast
	}
	if cacheable {
		opts.OnDone = func(snap jobs.Snapshot, spool []kbiplex.Solution) {
			s.results.Put(rescache.Entry{
				Key: key, Solutions: spool,
				Stats: snap.Stats, Truncated: snap.Truncated,
			})
		}
	}
	job, err := s.jobs.SubmitWith(name, q, func(ctx context.Context, q kbiplex.Query, emit func(kbiplex.Solution) bool) (kbiplex.Stats, error) {
		return s.runQuery(ctx, eng, name, q, emit)
	}, opts)
	if err != nil {
		jobError(w, err)
		return
	}
	if cacheable {
		setCachedHeaders(w, key.ETag(), "miss")
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, jobDocFrom(job.Snapshot()))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	docs := make([]jobDoc, len(snaps))
	for i, snap := range snaps {
		docs[i] = jobDocFrom(snap)
	}
	// Job state is volatile; an intermediary must never replay it.
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, docs)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	// Progress counters and state change between polls; only result
	// payloads (keyed by ETag on submission) are cacheable.
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, jobDocFrom(job.Snapshot()))
}

// handleDeleteJob cancels an active job (retaining it, and its spool,
// for TTL so late readers see the terminal state) and removes a
// finished one.
func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.jobs.Get(id)
	if err != nil {
		jobError(w, err)
		return
	}
	if job.Snapshot().State.Terminal() {
		if err := s.jobs.Remove(id); err != nil {
			// Lost a race with a concurrent delete; report the miss.
			jobError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err := s.jobs.Cancel(id); err != nil {
		jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobDocFrom(job.Snapshot()))
}

// resultLine is one spooled solution with its sequence number; resuming
// clients pass cursor = seq+1 of the last line they processed.
type resultLine struct {
	Seq int64   `json:"seq"`
	L   []int32 `json:"l"`
	R   []int32 `json:"r"`
}

// resultsTrailer ends a /v1 results stream. Unlike the legacy summary
// line it names the job's state and the next cursor, so a client can
// distinguish "done, everything delivered" from "still running, poll
// again from next_cursor".
type resultsTrailer struct {
	Done       bool       `json:"done,omitempty"`
	Error      string     `json:"error,omitempty"`
	State      jobs.State `json:"state"`
	NextCursor int64      `json:"next_cursor"`
}

// handleJobResults streams the spool from ?cursor=N (default 0) as
// NDJSON, following the job live until it finishes. The stream ends
// with a trailer frame; a connection cut before the trailer is exactly
// the case cursors exist for.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	var cursor int64
	if v := r.URL.Query().Get("cursor"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parameter cursor: want a non-negative integer, got %q", v))
			return
		}
		cursor = n
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	// A cursor-parameterized partial stream of a possibly-running job is
	// volatile; replaying it would hand a resumer a stale suffix.
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	next := cursor
	for seq, sol := range job.Results(ctx, cursor) {
		if err := enc.Encode(resultLine{Seq: seq, L: sol.L, R: sol.R}); err != nil {
			return // client went away; nothing left to tell it
		}
		s.streamed.Add(1)
		rc.Flush()
		next = seq + 1
	}

	snap := job.Snapshot()
	trailer := resultsTrailer{State: snap.State, NextCursor: next}
	switch {
	case ctx.Err() != nil:
		// The iterator ended because this request died (shutdown drain or
		// client cancel), not because the job finished.
		trailer.Error = shutdownCause(ctx, ctx.Err()).Error()
	case snap.State == jobs.StateDone:
		trailer.Done = true
	case snap.Err != nil:
		trailer.Error = snap.Err.Error()
	default:
		trailer.Error = fmt.Sprintf("job %s ended in state %s", snap.ID, snap.State)
	}
	enc.Encode(trailer)
	rc.Flush()
}
