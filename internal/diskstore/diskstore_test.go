package diskstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestModelAgainstMap drives the store with random inserts (with
// duplicates) and compares every Insert verdict against a plain map,
// using a tiny flush threshold to force many runs and compactions.
func TestModelAgainstMap(t *testing.T) {
	s := mustOpen(t, Options{FlushKeys: 16, MaxRuns: 3})
	model := map[string]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		key := []byte(fmt.Sprintf("key-%04d", rng.Intn(1200)))
		got := s.Insert(key)
		want := !model[string(key)]
		if got != want {
			t.Fatalf("insert %d (%s): got %v want %v", i, key, got, want)
		}
		model[string(key)] = true
	}
	if s.Err() != nil {
		t.Fatalf("store error: %v", s.Err())
	}
	if s.Len() != int64(len(model)) {
		t.Fatalf("Len: got %d want %d", s.Len(), len(model))
	}
	for k := range model {
		if !s.Has([]byte(k)) {
			t.Fatalf("lost key %s", k)
		}
	}
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("absent-%04d", i))
		if s.Has(k) {
			t.Fatalf("phantom key %s", k)
		}
	}
}

func TestCompactionReducesRuns(t *testing.T) {
	s := mustOpen(t, Options{FlushKeys: 8, MaxRuns: 2})
	for i := 0; i < 200; i++ {
		s.Insert([]byte(fmt.Sprintf("k%06d", i)))
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if s.Runs() > 3 {
		t.Fatalf("compaction left %d runs with MaxRuns=2", s.Runs())
	}
	for i := 0; i < 200; i++ {
		if !s.Has([]byte(fmt.Sprintf("k%06d", i))) {
			t.Fatalf("key %d lost across compaction", i)
		}
	}
}

func TestReopenSeesFlushedKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, FlushKeys: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Insert([]byte(fmt.Sprintf("persist-%02d", i)))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("reopened store reports %d keys, want 20", s2.Len())
	}
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("persist-%02d", i))
		if s2.Insert(key) {
			t.Fatalf("reopened store forgot key %s", key)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("empty Dir accepted")
	}
	if _, err := Open(Options{Dir: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing directory accepted")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: f}); err == nil {
		t.Fatal("plain file accepted as Dir")
	}
}

// corruptRun opens a store, spills keys, and returns the single run file.
func corruptSetup(t *testing.T) (dir, runFile string) {
	t.Helper()
	dir = t.TempDir()
	s, err := Open(Options{Dir: dir, FlushKeys: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.Insert([]byte(fmt.Sprintf("corrupt-%02d", i)))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	runs, err := filepath.Glob(filepath.Join(dir, "*.run"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no runs written: %v", err)
	}
	return dir, runs[0]
}

func TestOpenRejectsTruncatedRun(t *testing.T) {
	dir, runFile := corruptSetup(t)
	data, err := os.ReadFile(runFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(runFile, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("truncated run accepted")
	}
}

func TestOpenRejectsBitFlip(t *testing.T) {
	dir, runFile := corruptSetup(t)
	data, err := os.ReadFile(runFile)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(runFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("bit-flipped run accepted")
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	dir, runFile := corruptSetup(t)
	data, err := os.ReadFile(runFile)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "NOTARUN\n")
	if err := os.WriteFile(runFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestBinaryKeys exercises keys with arbitrary bytes (the vskey codec
// produces binary keys, not ASCII).
func TestBinaryKeys(t *testing.T) {
	s := mustOpen(t, Options{FlushKeys: 32})
	rng := rand.New(rand.NewSource(9))
	keys := make([][]byte, 300)
	for i := range keys {
		k := make([]byte, 1+rng.Intn(40))
		rng.Read(k)
		keys[i] = k
	}
	fresh := 0
	for _, k := range keys {
		if s.Insert(k) {
			fresh++
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if s.Insert(k) {
			t.Fatalf("duplicate admitted after flush: %x", k)
		}
	}
	if s.Len() != int64(fresh) {
		t.Fatalf("Len %d != fresh %d", s.Len(), fresh)
	}
}

// TestInsertIdempotentProperty is a property-based check: for any key
// sequence, the second insert of a key always reports false.
func TestInsertIdempotentProperty(t *testing.T) {
	dir := t.TempDir()
	n := 0
	err := quick.Check(func(keys [][]byte) bool {
		n++
		sub := filepath.Join(dir, fmt.Sprintf("case%03d", n))
		if err := os.Mkdir(sub, 0o755); err != nil {
			return false
		}
		s, err := Open(Options{Dir: sub, FlushKeys: 4})
		if err != nil {
			return false
		}
		defer s.Close()
		for _, k := range keys {
			s.Insert(k)
			if s.Insert(k) {
				return false
			}
		}
		return s.Err() == nil
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFlushIsNoop(t *testing.T) {
	s := mustOpen(t, Options{})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Runs() != 0 {
		t.Fatalf("empty flush created %d runs", s.Runs())
	}
}

func TestBloomFalseNegativeFree(t *testing.T) {
	b := newBloom(1000, 10)
	keys := make([][]byte, 1000)
	rng := rand.New(rand.NewSource(4))
	for i := range keys {
		k := make([]byte, 16)
		rng.Read(k)
		keys[i] = k
		b.add(k)
	}
	for _, k := range keys {
		if !b.mayContain(k) {
			t.Fatalf("bloom false negative for %x", k)
		}
	}
	// False-positive rate sanity: should be well below 10% at 10 bits/key.
	fp := 0
	for i := 0; i < 10000; i++ {
		k := make([]byte, 16)
		rng.Read(k)
		if b.mayContain(k) {
			fp++
		}
	}
	if fp > 1000 {
		t.Fatalf("bloom false-positive rate implausible: %d/10000", fp)
	}
}

func TestMergeCursorsDedups(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, keys ...string) *run {
		r, err := writeRun(filepath.Join(dir, name), len(keys), 10, func(emit func([]byte) error) error {
			for _, k := range keys {
				if err := emit([]byte(k)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(r.close)
		return r
	}
	r1 := write("a.run", "a", "c", "e")
	r2 := write("b.run", "b", "c", "d")
	c1, err := r1.cursor()
	if err != nil {
		t.Fatal(err)
	}
	defer c1.close()
	c2, err := r2.cursor()
	if err != nil {
		t.Fatal(err)
	}
	defer c2.close()
	var got []string
	if err := mergeCursors([]*runCursor{c1, c2}, func(k []byte) error {
		got = append(got, string(k))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("merge got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge got %v want %v", got, want)
		}
	}
}

func TestRunContainsBoundaries(t *testing.T) {
	dir := t.TempDir()
	// More keys than one index stride so the sparse index has >1 entry.
	n := indexStride*3 + 7
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", i*2)) // even keys only
	}
	r, err := writeRun(filepath.Join(dir, "x.run"), n, 10, func(emit func([]byte) error) error {
		for _, k := range keys {
			if err := emit(k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	for i, k := range keys {
		ok, err := r.contains(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %d (%s) not found", i, k)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i*2+1)) // odd keys absent
		ok, err := r.contains(k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("phantom key %s", k)
		}
	}
	// Keys before the first and after the last.
	for _, k := range [][]byte{[]byte("aaa"), []byte("zzz")} {
		ok, err := r.contains(k)
		if err != nil || ok {
			t.Fatalf("boundary key %s: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestRunRoundTripPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	n := 500
	rng := rand.New(rand.NewSource(2))
	set := map[string]bool{}
	for len(set) < n {
		k := make([]byte, 4+rng.Intn(12))
		rng.Read(k)
		set[string(k)] = true
	}
	keys := make([][]byte, 0, n)
	for k := range set {
		keys = append(keys, []byte(k))
	}
	sortByteSlices(keys)
	path := filepath.Join(dir, "rt.run")
	r, err := writeRun(path, n, 10, func(emit func([]byte) error) error {
		for _, k := range keys {
			if err := emit(k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r.close()
	r2, err := loadRun(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.close()
	c, err := r2.cursor()
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	i := 0
	for c.valid {
		if !bytes.Equal(c.key, keys[i]) {
			t.Fatalf("key %d: got %x want %x", i, c.key, keys[i])
		}
		i++
		if err := c.next(); err != nil {
			t.Fatal(err)
		}
	}
	if i != n {
		t.Fatalf("cursor yielded %d keys, want %d", i, n)
	}
}

func sortByteSlices(a [][]byte) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && bytes.Compare(a[j-1], a[j]) > 0; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func BenchmarkInsertFresh(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	var key [12]byte
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		s.Insert(key[:])
	}
	if s.Err() != nil {
		b.Fatal(s.Err())
	}
}

func BenchmarkHasAfterSpill(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), FlushKeys: 1 << 12})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		s.Insert([]byte(fmt.Sprintf("bench-%08d", i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Has([]byte(fmt.Sprintf("bench-%08d", i%n)))
	}
}
