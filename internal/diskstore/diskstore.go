// Package diskstore provides a disk-backed deduplication store for
// solution keys, letting the traversal engines handle solution sets larger
// than memory. The paper's Algorithm 1/2 keep found solutions in an
// in-memory B-tree; on billion-edge inputs (Figure 9(a)) the number of
// MBPs can exceed memory, so this package spills the set to disk with an
// LSM-flavoured layout:
//
//   - new keys accumulate in an in-memory B-tree memtable;
//   - a full memtable flushes to an immutable sorted run file;
//   - each run carries an in-memory Bloom filter and a sparse index
//     (every indexStride-th key with its file offset), so a membership
//     probe costs at most one block read;
//   - when the number of runs exceeds Options.MaxRuns they are k-way
//     merged into a single run.
//
// Run file format (all integers little-endian):
//
//	magic "KBPRUN1\n" | uint32 keyCount | (uvarint len | key)* | uint32 CRC32
//
// The CRC covers everything between the magic and the checksum. Keys
// within a run are strictly ascending and unique across the whole store
// (Insert checks membership before admitting a key).
package diskstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/btree"
)

var magic = [8]byte{'K', 'B', 'P', 'R', 'U', 'N', '1', '\n'}

// Options configures a Store.
type Options struct {
	// Dir is the directory that holds run files. It must exist.
	Dir string
	// FlushKeys is the number of memtable keys that triggers a flush to a
	// run file (default 1 << 16).
	FlushKeys int
	// MaxRuns triggers a full merge when the number of run files exceeds
	// it (default 8).
	MaxRuns int
	// BloomBitsPerKey sizes the per-run Bloom filters (default 10, ~1%
	// false positives, which only cost an extra block read).
	BloomBitsPerKey int
}

func (o *Options) fill() {
	if o.FlushKeys <= 0 {
		o.FlushKeys = 1 << 16
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 8
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
}

// Store is a disk-backed set of byte keys. It is not safe for concurrent
// use; wrap it in a mutex to share it (core.EnumerateParallel's shared
// store does exactly that for its own store).
type Store struct {
	opts   Options
	mem    btree.Tree
	runs   []*run
	nextID int
	count  int64 // total distinct keys
	err    error // first I/O error; the store degrades to memory-only
}

// Open creates a store over dir, loading any run files a previous store
// left there (so a crashed enumeration can resume deduplication).
func Open(opts Options) (*Store, error) {
	opts.fill()
	if opts.Dir == "" {
		return nil, fmt.Errorf("diskstore: Options.Dir is required")
	}
	st, err := os.Stat(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("diskstore: %s is not a directory", opts.Dir)
	}
	s := &Store{opts: opts}
	names, err := filepath.Glob(filepath.Join(opts.Dir, "*.run"))
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	sort.Strings(names)
	for _, name := range names {
		r, err := loadRun(name, opts.BloomBitsPerKey)
		if err != nil {
			s.closeRuns()
			return nil, err
		}
		s.runs = append(s.runs, r)
		s.count += int64(r.count)
		if id := runID(name); id >= s.nextID {
			s.nextID = id + 1
		}
	}
	return s, nil
}

func runID(name string) int {
	var id int
	fmt.Sscanf(filepath.Base(name), "%06d.run", &id)
	return id
}

// Insert adds key to the set and reports whether it was absent. It
// satisfies the traversal engines' solution-store contract. I/O failures
// do not lose keys: the store records the first error (see Err) and keeps
// deduplicating from memory.
func (s *Store) Insert(key []byte) bool {
	if s.Has(key) {
		return false
	}
	s.mem.Insert(key)
	s.count++
	if s.err == nil && s.mem.Len() >= s.opts.FlushKeys {
		if err := s.flush(); err != nil {
			s.err = err
		}
	}
	return true
}

// Has reports whether key is present.
func (s *Store) Has(key []byte) bool {
	if s.mem.Has(key) {
		return true
	}
	for i := len(s.runs) - 1; i >= 0; i-- {
		ok, err := s.runs[i].contains(key)
		if err != nil {
			if s.err == nil {
				s.err = err
			}
			continue
		}
		if ok {
			return true
		}
	}
	return false
}

// Len returns the number of distinct keys inserted.
func (s *Store) Len() int64 { return s.count }

// Runs returns the current number of on-disk run files (observability and
// tests).
func (s *Store) Runs() int { return len(s.runs) }

// Err returns the first I/O error the store encountered, if any. A store
// with a non-nil Err still deduplicates correctly, holding everything it
// could not spill in memory.
func (s *Store) Err() error { return s.err }

// Flush forces the memtable to disk (normally done automatically).
func (s *Store) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.flush()
}

// Close flushes nothing (the store is a cache of what is already safe) and
// releases the run file handles. The run files remain on disk.
func (s *Store) Close() error {
	s.closeRuns()
	return s.err
}

func (s *Store) closeRuns() {
	for _, r := range s.runs {
		r.close()
	}
	s.runs = nil
}

func (s *Store) flush() error {
	if s.mem.Len() == 0 {
		return nil
	}
	name := filepath.Join(s.opts.Dir, fmt.Sprintf("%06d.run", s.nextID))
	r, err := writeRun(name, s.mem.Len(), s.opts.BloomBitsPerKey, func(emit func(key []byte) error) error {
		var inner error
		s.mem.Ascend(func(key []byte) bool {
			inner = emit(key)
			return inner == nil
		})
		return inner
	})
	if err != nil {
		return err
	}
	s.nextID++
	s.runs = append(s.runs, r)
	s.mem = btree.Tree{}
	if len(s.runs) > s.opts.MaxRuns {
		return s.compact()
	}
	return nil
}

// compact merges every run into one. Runs hold disjoint key sets (Insert
// screens duplicates), so the merge never sees equal keys; it still
// tolerates them for robustness.
func (s *Store) compact() error {
	total := 0
	cursors := make([]*runCursor, len(s.runs))
	for i, r := range s.runs {
		c, err := r.cursor()
		if err != nil {
			for _, cc := range cursors[:i] {
				cc.close()
			}
			return err
		}
		cursors[i] = c
		total += r.count
	}
	name := filepath.Join(s.opts.Dir, fmt.Sprintf("%06d.run", s.nextID))
	merged, err := writeRun(name, total, s.opts.BloomBitsPerKey, func(emit func(key []byte) error) error {
		return mergeCursors(cursors, emit)
	})
	for _, c := range cursors {
		c.close()
	}
	if err != nil {
		return err
	}
	s.nextID++
	old := s.runs
	s.runs = []*run{merged}
	for _, r := range old {
		r.close()
		os.Remove(r.path)
	}
	return nil
}

// mergeCursors streams the ascending union of the cursors, dropping
// duplicate keys.
func mergeCursors(cursors []*runCursor, emit func(key []byte) error) error {
	var last []byte
	havePrev := false
	for {
		best := -1
		for i, c := range cursors {
			if !c.valid {
				continue
			}
			if best == -1 || bytes.Compare(c.key, cursors[best].key) < 0 {
				best = i
			}
		}
		if best == -1 {
			return nil
		}
		c := cursors[best]
		if !havePrev || !bytes.Equal(last, c.key) {
			if err := emit(c.key); err != nil {
				return err
			}
			last = append(last[:0], c.key...)
			havePrev = true
		}
		if err := c.next(); err != nil {
			return err
		}
	}
}

// ---------------------------------------------------------------------------
// Run files.

// indexStride is the sparse-index granularity: one retained key per this
// many keys, bounding a probe to one ~stride-key block read.
const indexStride = 64

type run struct {
	path  string
	f     *os.File
	count int
	bloom bloom
	// Sparse index: sparseKeys[i] is the (i*indexStride)-th key of the
	// run, located at file offset sparseOffs[i]; dataEnd is the offset
	// just past the last key.
	sparseKeys [][]byte
	sparseOffs []int64
	dataEnd    int64
}

func (r *run) close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// writeRun streams keys (ascending) from produce into a new run file and
// returns the opened run. count is the exact number of keys produce will
// emit; it is validated.
func writeRun(path string, count, bloomBits int, produce func(emit func(key []byte) error) error) (*run, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	crc := crc32.NewIEEE()
	w := io.MultiWriter(bw, crc)

	if _, err := bw.Write(magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(count))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}

	r := &run{path: path, count: count, bloom: newBloom(count, bloomBits)}
	offset := int64(len(magic) + 4)
	written := 0
	var lenBuf [binary.MaxVarintLen64]byte
	emit := func(key []byte) error {
		if written%indexStride == 0 {
			r.sparseKeys = append(r.sparseKeys, append([]byte(nil), key...))
			r.sparseOffs = append(r.sparseOffs, offset)
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(key)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
		if _, err := w.Write(key); err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
		r.bloom.add(key)
		offset += int64(n + len(key))
		written++
		return nil
	}
	if err := produce(emit); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if written != count {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("diskstore: run writer promised %d keys, produced %d", count, written)
	}
	r.dataEnd = offset
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	// Reopen read-only for probes.
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	r.f = rf
	return r, nil
}

// loadRun reads a run file back, verifying the checksum and rebuilding the
// Bloom filter and sparse index.
func loadRun(path string, bloomBits int) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s: short header: %w", path, err)
	}
	if m != magic {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s: bad magic", path)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	var hdr [4]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s: short header: %w", path, err)
	}
	count := int(binary.LittleEndian.Uint32(hdr[:]))
	r := &run{path: path, count: count, bloom: newBloom(count, bloomBits)}
	offset := int64(len(magic) + 4)
	var prev []byte
	cr := &countingByteReader{r: tr}
	for i := 0; i < count; i++ {
		keyStart := offset + cr.n
		klen, err := binary.ReadUvarint(cr)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("diskstore: %s: truncated at key %d: %w", path, i, err)
		}
		if klen > 1<<20 {
			f.Close()
			return nil, fmt.Errorf("diskstore: %s: implausible key length %d", path, klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(tr, key); err != nil {
			f.Close()
			return nil, fmt.Errorf("diskstore: %s: truncated at key %d: %w", path, i, err)
		}
		cr.n += int64(klen)
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			f.Close()
			return nil, fmt.Errorf("diskstore: %s: keys out of order at %d", path, i)
		}
		if i%indexStride == 0 {
			r.sparseKeys = append(r.sparseKeys, key)
			r.sparseOffs = append(r.sparseOffs, keyStart)
		}
		r.bloom.add(key)
		prev = key
	}
	r.dataEnd = offset + cr.n
	var want [4]byte
	if _, err := io.ReadFull(br, want[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s: missing checksum: %w", path, err)
	}
	if binary.LittleEndian.Uint32(want[:]) != crc.Sum32() {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s: checksum mismatch", path)
	}
	r.f = f
	return r, nil
}

// countingByteReader adapts an io.Reader to io.ByteReader while counting
// consumed bytes.
type countingByteReader struct {
	r   io.Reader
	n   int64
	buf [1]byte
}

func (c *countingByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(c.r, c.buf[:]); err != nil {
		return 0, err
	}
	c.n++
	return c.buf[0], nil
}

// contains probes the run for key: Bloom filter, then sparse index, then
// one block read.
func (r *run) contains(key []byte) (bool, error) {
	if r.count == 0 || !r.bloom.mayContain(key) {
		return false, nil
	}
	// Find the last sparse entry with sparseKeys[i] <= key.
	i := sort.Search(len(r.sparseKeys), func(i int) bool {
		return bytes.Compare(r.sparseKeys[i], key) > 0
	}) - 1
	if i < 0 {
		return false, nil
	}
	start := r.sparseOffs[i]
	end := r.dataEnd
	if i+1 < len(r.sparseOffs) {
		end = r.sparseOffs[i+1]
	}
	block := make([]byte, end-start)
	if _, err := r.f.ReadAt(block, start); err != nil {
		return false, fmt.Errorf("diskstore: %s: block read: %w", r.path, err)
	}
	for len(block) > 0 {
		klen, n := binary.Uvarint(block)
		if n <= 0 || int(klen) > len(block)-n {
			return false, fmt.Errorf("diskstore: %s: corrupt block at %d", r.path, start)
		}
		k := block[n : n+int(klen)]
		switch bytes.Compare(k, key) {
		case 0:
			return true, nil
		case 1:
			return false, nil // past the key; ascending order
		}
		block = block[n+int(klen):]
	}
	return false, nil
}

// cursor returns a sequential reader over the run's keys (for compaction).
func (r *run) cursor() (*runCursor, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	if _, err := br.Discard(len(magic) + 4); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	c := &runCursor{f: f, br: br, remaining: r.count}
	if err := c.next(); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

type runCursor struct {
	f         *os.File
	br        *bufio.Reader
	key       []byte
	remaining int
	valid     bool
}

func (c *runCursor) next() error {
	if c.remaining == 0 {
		c.valid = false
		return nil
	}
	klen, err := binary.ReadUvarint(c.br)
	if err != nil {
		c.valid = false
		return fmt.Errorf("diskstore: cursor: %w", err)
	}
	if cap(c.key) < int(klen) {
		c.key = make([]byte, klen)
	}
	c.key = c.key[:klen]
	if _, err := io.ReadFull(c.br, c.key); err != nil {
		c.valid = false
		return fmt.Errorf("diskstore: cursor: %w", err)
	}
	c.remaining--
	c.valid = true
	return nil
}

func (c *runCursor) close() { c.f.Close() }

// ---------------------------------------------------------------------------
// Bloom filter.

// bloom is a standard double-hashing Bloom filter (Kirsch–Mitzenmacher):
// k probe positions derived from two FNV-based hashes.
type bloom struct {
	bits   []uint64
	nbits  uint64
	hashes int
}

func newBloom(keys, bitsPerKey int) bloom {
	if keys < 1 {
		keys = 1
	}
	nbits := uint64(keys * bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	hashes := int(float64(bitsPerKey) * 0.69) // ln 2
	if hashes < 1 {
		hashes = 1
	}
	if hashes > 12 {
		hashes = 12
	}
	return bloom{bits: make([]uint64, (nbits+63)/64), nbits: nbits, hashes: hashes}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// Second hash: rehash with a salt byte to decorrelate.
	h.Write([]byte{0x9e})
	return h1, h.Sum64()
}

func (b *bloom) add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}
