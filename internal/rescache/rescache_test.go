package rescache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	kbiplex "repro"
)

func entry(crc uint32, query string, n int) Entry {
	sols := make([]kbiplex.Solution, n)
	for i := range sols {
		sols[i] = kbiplex.Solution{L: []int32{int32(i), int32(i + 1)}, R: []int32{int32(i + 2)}}
	}
	return Entry{
		Key:       Key{GraphCRC: crc, Query: query},
		Solutions: sols,
		Stats:     kbiplex.Stats{Solutions: int64(n), Algorithm: kbiplex.ITraversal, Duration: 7 * time.Millisecond},
	}
}

func TestGetPutCounters(t *testing.T) {
	c, err := Open(Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	k := Key{GraphCRC: 1, Query: "q"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put(entry(1, "q", 3)) {
		t.Fatal("entry refused")
	}
	got, ok := c.Get(k)
	if !ok || len(got.Solutions) != 3 || got.Stats.Solutions != 3 {
		t.Fatalf("Get = %+v, %v; want 3 solutions", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Admitted != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("counters off: %+v", st)
	}
	// Contains moves nothing.
	if !c.Contains(k) || c.Contains(Key{GraphCRC: 2, Query: "q"}) {
		t.Fatal("Contains wrong")
	}
	after := c.Stats()
	if after.Hits != st.Hits || after.Misses != st.Misses {
		t.Fatalf("Contains moved counters: %+v -> %+v", st, after)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget fits roughly two of the three entries; the untouched one
	// must be the victim.
	e := entry(1, "a", 10)
	size := e.bytes()
	c, err := Open(Config{MaxBytes: 2*size + size/2, MaxEntryBytes: size})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(e)
	c.Put(entry(1, "b", 10))
	c.Get(Key{GraphCRC: 1, Query: "a"}) // touch a; b is now LRU
	c.Put(entry(1, "c", 10))
	if c.Contains(Key{GraphCRC: 1, Query: "b"}) {
		t.Fatal("LRU entry b survived")
	}
	if !c.Contains(Key{GraphCRC: 1, Query: "a"}) || !c.Contains(Key{GraphCRC: 1, Query: "c"}) {
		t.Fatal("wrong victim evicted")
	}
	st := c.Stats()
	if st.Evicted != 1 || st.Bytes > st.MaxBytes {
		t.Fatalf("eviction accounting off: %+v", st)
	}
	// An entry over the per-entry cap is refused outright.
	if c.Put(entry(1, "huge", 100)) {
		t.Fatal("oversized entry admitted")
	}
}

func TestInvalidateGraph(t *testing.T) {
	c, err := Open(Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(entry(7, "a", 2))
	c.Put(entry(7, "b", 2))
	c.Put(entry(8, "a", 2))
	if n := c.InvalidateGraph(7); n != 2 {
		t.Fatalf("InvalidateGraph(7) = %d, want 2", n)
	}
	if c.Contains(Key{GraphCRC: 7, Query: "a"}) || !c.Contains(Key{GraphCRC: 8, Query: "a"}) {
		t.Fatal("invalidation hit the wrong graph")
	}
	if st := c.Stats(); st.Invalidated != 2 {
		t.Fatalf("Invalidated = %d, want 2", st.Invalidated)
	}
}

func TestPersistReplay(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{MaxBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := entry(42, "hot", 5)
	want.Truncated = true
	c.Put(want)
	c.Put(entry(42, "cold", 1))
	c.InvalidateGraph(0) // no-op, exercises tombstone-free path
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(Config{MaxBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Get(Key{GraphCRC: 42, Query: "hot"})
	if !ok {
		t.Fatal("persisted entry lost across restart")
	}
	if len(got.Solutions) != 5 || !got.Truncated || got.Stats.Solutions != 5 ||
		got.Stats.Algorithm != kbiplex.ITraversal || got.Stats.Duration != 7*time.Millisecond {
		t.Fatalf("replayed entry mangled: %+v", got)
	}
	if got.Solutions[2].L[0] != 2 || got.Solutions[2].R[0] != 4 {
		t.Fatalf("replayed solutions wrong: %+v", got.Solutions[2])
	}
	if st := c2.Stats(); !st.Persisted || st.Entries != 2 || st.LogBytes <= 0 {
		t.Fatalf("replayed stats off: %+v", st)
	}
}

func TestPersistTombstones(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{MaxBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(entry(1, "stays", 2))
	c.Put(entry(2, "goes", 2))
	c.InvalidateGraph(2)
	c.Close()

	c2, err := Open(Config{MaxBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Contains(Key{GraphCRC: 2, Query: "goes"}) {
		t.Fatal("tombstoned entry resurrected")
	}
	if !c2.Contains(Key{GraphCRC: 1, Query: "stays"}) {
		t.Fatal("live entry lost")
	}
}

// TestCorruptLogQuarantined mirrors the catalog durability tests: a log
// that fails its checksum is moved aside with a .corrupt suffix and the
// cache restarts empty.
func TestCorruptLogQuarantined(t *testing.T) {
	for name, mangle := range map[string]func(path string, t *testing.T){
		"flipped byte": func(path string, t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(path string, t *testing.T) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		},
		"bad magic": func(path string, t *testing.T) {
			if err := os.WriteFile(path, []byte("not a rescache log at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(Config{MaxBytes: 1 << 20, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			c.Put(entry(9, "x", 4))
			c.Close()
			path := filepath.Join(dir, logName)
			mangle(path, t)

			c2, err := Open(Config{MaxBytes: 1 << 20, Dir: dir})
			if err != nil {
				t.Fatalf("corrupt log must not fail Open: %v", err)
			}
			defer c2.Close()
			if st := c2.Stats(); st.Entries != 0 {
				t.Fatalf("corrupt log replayed %d entries", st.Entries)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("corrupt log not quarantined: %v", err)
			}
			// The cache is usable and durable again after quarantine.
			c2.Put(entry(9, "y", 1))
			c2.Close()
			c3, err := Open(Config{MaxBytes: 1 << 20, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer c3.Close()
			if !c3.Contains(Key{GraphCRC: 9, Query: "y"}) {
				t.Fatal("cache not durable after quarantine")
			}
		})
	}
}

// TestCompaction: dead records (refreshed puts, tombstones) are
// reclaimed once they dominate the log.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{MaxBytes: 1 << 26, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Churn one key with a large entry until the log crosses the 1 MiB
	// compaction floor with mostly dead records.
	for i := 0; i < 300; i++ {
		c.Put(entry(5, "churn", 200))
	}
	st := c.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after churn: %+v", st)
	}
	if st.Entries != 1 {
		t.Fatalf("churned key duplicated: %+v", st)
	}
	got, ok := c.Get(Key{GraphCRC: 5, Query: "churn"})
	if !ok || len(got.Solutions) != 200 {
		t.Fatal("entry lost across compaction")
	}
}

// TestConcurrentHitAdmitEvict drives Get/Put/InvalidateGraph from many
// goroutines; run under -race this is the data-race coverage the issue
// asks for.
func TestConcurrentHitAdmitEvict(t *testing.T) {
	c, err := Open(Config{MaxBytes: 1 << 15, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{GraphCRC: uint32(i % 7), Query: "q"}
				switch i % 4 {
				case 0:
					c.Put(entry(k.GraphCRC, k.Query, i%16+1))
				case 1:
					if e, ok := c.Get(k); ok && len(e.Solutions) == 0 {
						t.Error("hit returned empty spool")
					}
				case 2:
					c.Contains(k)
				default:
					if i%40 == 3 {
						c.InvalidateGraph(k.GraphCRC)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("byte accounting out of bounds: %+v", st)
	}
	if st.Admitted == 0 || st.Hits == 0 {
		t.Fatalf("concurrency test exercised nothing: %+v", st)
	}
}

func TestMemoryOnlyNoFiles(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(entry(1, "a", 1))
	if st := c.Stats(); st.Persisted || st.LogBytes != 0 {
		t.Fatalf("memory-only cache claims persistence: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
