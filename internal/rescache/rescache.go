// Package rescache is the hot-query result cache behind the kbiplex
// service: a byte-bounded LRU of completed result spools keyed by
// (graph payload CRC, canonical query). Millions of users mostly repeat
// the same queries, and a finished job's spool is a perfect
// materialized answer for any identical (graph snapshot, query) pair —
// the payload CRC the store manifest already records makes cache
// validity a single equality check, so a replaced graph can never serve
// a stale spool: its CRC changes and the old entries simply stop
// matching.
//
// The cache is bounded in bytes, evicts least-recently-used entries
// past the budget, refuses entries larger than a per-entry cap (one
// giant spool must not flush the whole working set), and counts hits,
// misses, admissions, evictions and invalidations for the service's
// /stats endpoint.
//
// With a directory configured the cache is durable in the bitcask
// style: admissions append CRC-framed records to one log, evictions
// and invalidations append tombstones, and Open replays the log into
// memory and rewrites it compacted (the replay doubles as the boot
// sweep). A truncated or corrupt log — a crash mid-append, a bad disk —
// is quarantined with a .corrupt suffix and the cache restarts empty:
// it is a cache, so losing it costs latency, never correctness.
package rescache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	kbiplex "repro"
)

// logName is the append-log filename inside Config.Dir.
const logName = "rescache.log"

// logMagic heads the append-log; Open refuses files without it.
var logMagic = [8]byte{'K', 'B', 'R', 'S', 'C', 'L', '1', '\n'}

// Record kinds.
const (
	recPut = 1 // admit an entry
	recDel = 2 // tombstone: the entry was evicted or invalidated
)

// maxRecordBytes bounds one log record at replay time so a corrupt
// length field cannot demand gigabytes.
const maxRecordBytes = 1 << 30

// Key identifies one cached result set: the graph snapshot's payload
// CRC (content fingerprint, from the store manifest or
// bigraph.PayloadCRC) and the canonicalized query (kbiplex
// Query.CacheKey).
type Key struct {
	GraphCRC uint32
	Query    string
}

// ETag renders the key as a strong HTTP entity tag: the result bytes
// for one ETag are immutable, so If-None-Match revalidation is exact.
func (k Key) ETag() string {
	return fmt.Sprintf("%q", fmt.Sprintf("%08x;%s", k.GraphCRC, k.Query))
}

// Entry is one cached result set: the full spool of a completed run
// plus the summary a job document reports. Solutions must not be
// mutated after Put — the cache shares the slice with every Get.
type Entry struct {
	Key       Key
	Solutions []kbiplex.Solution
	Stats     kbiplex.Stats
	Truncated bool
}

// bytes estimates the entry's resident footprint: slice headers plus
// vertex ids per solution, plus the key string.
func (e *Entry) bytes() int64 {
	n := int64(len(e.Key.Query)) + 64
	for _, s := range e.Solutions {
		n += SolutionBytes(s)
	}
	return n
}

// Config bounds a cache.
type Config struct {
	// MaxBytes caps the estimated resident bytes of cached spools
	// (default 64 MiB). Admissions past it evict LRU entries.
	MaxBytes int64
	// MaxEntryBytes refuses single entries larger than this (default
	// MaxBytes/8): one giant spool must not flush the working set.
	MaxEntryBytes int64
	// Dir, when non-empty, persists the cache as an append-log under it
	// (created if missing). Empty disables persistence.
	Dir string
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.MaxEntryBytes <= 0 {
		c.MaxEntryBytes = c.MaxBytes / 8
	}
	return c
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Entries and Bytes describe the resident working set; MaxBytes
	// echoes the budget.
	Entries  int
	Bytes    int64
	MaxBytes int64
	// Hits and Misses count Get outcomes; Admitted, Evicted and
	// Invalidated count entries entering and leaving.
	Hits, Misses                   int64
	Admitted, Evicted, Invalidated int64
	// Persisted reports whether an append-log backs the cache;
	// LogBytes is its current size and Compactions counts rewrites.
	Persisted   bool
	LogBytes    int64
	Compactions int64
}

// node is one resident entry with its LRU bookkeeping.
type node struct {
	entry   Entry
	size    int64
	lastUse int64
}

// Cache is the result cache. Create one with Open; it is safe for
// concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[Key]*node
	clock   int64
	bytes   int64
	stats   Stats

	log      *os.File // nil when persistence is off or the log failed
	logBytes int64
	liveLog  int64 // bytes of live (non-superseded) records in the log
}

// Open builds a cache, replaying (and compacting) the append-log in
// cfg.Dir when persistence is configured. A missing directory is
// created; a corrupt log is quarantined and the cache starts empty.
func Open(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, entries: make(map[Key]*node)}
	c.stats.MaxBytes = cfg.MaxBytes
	if cfg.Dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("rescache: %w", err)
	}
	c.stats.Persisted = true
	path := filepath.Join(cfg.Dir, logName)
	if err := c.replay(path); err != nil {
		// Torn or corrupt log: set it aside for inspection and restart
		// empty. Cached results are reproducible by definition, so the
		// safe recovery is also the cheap one.
		os.Rename(path, path+".corrupt")
		clear(c.entries)
		c.bytes = 0
	}
	// Rewrite compacted: the replayed state becomes the new log and the
	// dead prefix (superseded puts, tombstoned entries) is dropped.
	if err := c.compactLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// replay loads the log at path into the cache's in-memory state,
// honoring the byte budget as it goes (the log can legitimately hold
// more than fits when the budget shrank between runs). Any framing or
// checksum error aborts with a non-nil error; the caller quarantines.
func (c *Cache) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != logMagic {
		return errors.New("rescache: bad log magic")
	}
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil // clean end
			}
			return err // torn length prefix
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxRecordBytes {
			return fmt.Errorf("rescache: implausible record length %d", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return err // truncated body
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return err // truncated checksum
		}
		if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.ChecksumIEEE(body) {
			return errors.New("rescache: record checksum mismatch")
		}
		kind, ent, err := decodeRecord(body)
		if err != nil {
			return err
		}
		switch kind {
		case recPut:
			c.admitLocked(ent) // single-threaded during Open; no lock needed
		case recDel:
			if n, ok := c.entries[ent.Key]; ok {
				c.removeLocked(ent.Key, n)
			}
		}
	}
}

// Get returns the cached entry for k, if any, touching its LRU slot.
// The returned entry shares its Solutions slice with the cache; callers
// must treat it as immutable.
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return Entry{}, false
	}
	c.stats.Hits++
	c.clock++
	n.lastUse = c.clock
	return n.entry, true
}

// Contains reports whether k is cached without counting a hit or a miss
// — the revalidation path (If-None-Match) asks before deciding how to
// respond, and only the decision should move the counters.
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[k]
	return ok
}

// MaxEntryBytes returns the per-entry admission cap, letting producers
// stop collecting a spool that can never be admitted.
func (c *Cache) MaxEntryBytes() int64 { return c.cfg.MaxEntryBytes }

// SolutionBytes is the per-solution share of an entry's size estimate;
// producers bounding a collection against MaxEntryBytes sum it.
func SolutionBytes(s kbiplex.Solution) int64 {
	return 48 + 4*int64(len(s.L)+len(s.R))
}

// Put admits e, evicting LRU entries past the byte budget, and reports
// whether the entry was admitted (an entry over the per-entry cap is
// refused). Admissions and evictions are appended to the log when
// persistence is on. Re-putting an existing key refreshes the entry.
func (c *Cache) Put(e Entry) bool {
	size := e.bytes()
	if size > c.cfg.MaxEntryBytes {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[e.Key]; ok {
		// Refresh: the old record becomes dead weight in the log.
		c.removeQuietLocked(e.Key, old)
	}
	c.admitLocked(e)
	c.stats.Admitted++
	c.appendLocked(recPut, &e)
	// Evict past the budget, oldest first; the new entry is never the
	// victim (it fits by the per-entry cap and was just touched).
	for c.bytes > c.cfg.MaxBytes {
		var victim *node
		var victimKey Key
		for k, n := range c.entries {
			if k == e.Key {
				continue
			}
			if victim == nil || n.lastUse < victim.lastUse {
				victim, victimKey = n, k
			}
		}
		if victim == nil {
			break
		}
		c.removeLocked(victimKey, victim)
		c.stats.Evicted++
	}
	c.maybeCompactLocked()
	return true
}

// InvalidateGraph drops every entry cached for the given graph payload
// CRC and returns how many were dropped. Correctness never depends on
// it — a replaced graph has a new CRC and old entries stop matching —
// but dropping them returns their memory immediately.
func (c *Cache) InvalidateGraph(crc uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for k, n := range c.entries {
		if k.GraphCRC == crc {
			c.removeLocked(k, n)
			c.stats.Invalidated++
			dropped++
		}
	}
	if dropped > 0 {
		c.maybeCompactLocked()
	}
	return dropped
}

// admitLocked inserts e without eviction or logging; c.mu must be held
// (or the cache not yet published, during Open).
func (c *Cache) admitLocked(e Entry) {
	if old, ok := c.entries[e.Key]; ok {
		c.bytes -= old.size
	}
	c.clock++
	n := &node{entry: e, size: e.bytes(), lastUse: c.clock}
	c.entries[e.Key] = n
	c.bytes += n.size
}

// removeLocked drops an entry and appends its tombstone; c.mu held.
func (c *Cache) removeLocked(k Key, n *node) {
	c.removeQuietLocked(k, n)
	c.appendLocked(recDel, &Entry{Key: k})
}

// removeQuietLocked drops an entry without logging; c.mu held.
func (c *Cache) removeQuietLocked(k Key, n *node) {
	delete(c.entries, k)
	c.bytes -= n.size
	c.liveLog -= recordBytes(&n.entry)
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	st.LogBytes = c.logBytes
	return st
}

// Close flushes and closes the append-log. The cache must not be used
// afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return nil
	}
	err := c.log.Sync()
	if cerr := c.log.Close(); err == nil {
		err = cerr
	}
	c.log = nil
	return err
}

// --- append-log encoding ---

// appendLocked writes one record to the log; c.mu held. Log I/O errors
// disable persistence for the rest of the process (the in-memory cache
// keeps serving) rather than failing the serving path.
func (c *Cache) appendLocked(kind byte, e *Entry) {
	if !c.stats.Persisted || c.log == nil {
		return
	}
	rec := encodeRecord(kind, e)
	if _, err := c.log.Write(rec); err != nil {
		c.log.Close()
		c.log = nil
		return
	}
	c.logBytes += int64(len(rec))
	if kind == recPut {
		c.liveLog += int64(len(rec))
	}
}

// maybeCompactLocked rewrites the log when dead records dominate it
// (bitcask-style space reclamation); c.mu held.
func (c *Cache) maybeCompactLocked() {
	if c.log == nil || c.logBytes < 1<<20 || c.logBytes < 2*c.liveLog {
		return
	}
	c.compactLocked()
}

// compactLocked rewrites the log from the live entries via a temp file
// and atomic rename; c.mu held (or the cache not yet published).
func (c *Cache) compactLocked() error {
	if !c.stats.Persisted {
		return nil
	}
	if c.log != nil {
		c.log.Close()
		c.log = nil
	}
	f, err := os.CreateTemp(c.cfg.Dir, ".tmp-rescache-*")
	if err != nil {
		return fmt.Errorf("rescache: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("rescache: compacting log: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(logMagic[:]); err != nil {
		return fail(err)
	}
	var total int64 = int64(len(logMagic))
	for _, n := range c.entries {
		rec := encodeRecord(recPut, &n.entry)
		if _, err := bw.Write(rec); err != nil {
			return fail(err)
		}
		total += int64(len(rec))
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	path := filepath.Join(c.cfg.Dir, logName)
	if err := os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	if d, err := os.Open(c.cfg.Dir); err == nil {
		d.Sync()
		d.Close()
	}
	// Reopen for appending; seek position is the end by O_APPEND.
	log, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		f.Close()
		return fmt.Errorf("rescache: reopening log: %w", err)
	}
	f.Close()
	c.log = log
	c.logBytes = total
	c.liveLog = total - int64(len(logMagic))
	c.stats.Compactions++
	return nil
}

// recordBytes is the encoded size of an entry's put record, used to
// track the live fraction of the log.
func recordBytes(e *Entry) int64 {
	return int64(len(encodeRecord(recPut, e)))
}

// encodeRecord frames one record: u32 body length, body, u32 CRC(body).
// The body is kind, graph CRC, the query key, and (for puts) the
// truncated flag, run stats and the varint-encoded spool.
func encodeRecord(kind byte, e *Entry) []byte {
	var body []byte
	var u [binary.MaxVarintLen64]byte
	uv := func(x uint64) {
		n := binary.PutUvarint(u[:], x)
		body = append(body, u[:n]...)
	}
	body = append(body, kind)
	body = binary.LittleEndian.AppendUint32(body, e.Key.GraphCRC)
	uv(uint64(len(e.Key.Query)))
	body = append(body, e.Key.Query...)
	if kind == recPut {
		flags := byte(0)
		if e.Truncated {
			flags = 1
		}
		body = append(body, flags)
		uv(uint64(e.Stats.Solutions))
		uv(uint64(e.Stats.Algorithm))
		uv(uint64(e.Stats.Duration))
		uv(uint64(len(e.Solutions)))
		for _, s := range e.Solutions {
			uv(uint64(len(s.L)))
			for _, v := range s.L {
				uv(uint64(uint32(v)))
			}
			uv(uint64(len(s.R)))
			for _, v := range s.R {
				uv(uint64(uint32(v)))
			}
		}
	}
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	rec = append(rec, body...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(body))
	return rec
}

// decodeRecord parses a record body (checksum already verified).
func decodeRecord(body []byte) (byte, Entry, error) {
	bad := func(what string) (byte, Entry, error) {
		return 0, Entry{}, fmt.Errorf("rescache: malformed record: %s", what)
	}
	pos := 0
	uv := func() (uint64, bool) {
		x, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return x, true
	}
	if len(body) < 5 {
		return bad("short body")
	}
	kind := body[0]
	if kind != recPut && kind != recDel {
		return bad("unknown kind")
	}
	var e Entry
	e.Key.GraphCRC = binary.LittleEndian.Uint32(body[1:5])
	pos = 5
	qlen, ok := uv()
	if !ok || pos+int(qlen) > len(body) {
		return bad("query key")
	}
	e.Key.Query = string(body[pos : pos+int(qlen)])
	pos += int(qlen)
	if kind == recDel {
		return kind, e, nil
	}
	if pos >= len(body) {
		return bad("missing flags")
	}
	e.Truncated = body[pos]&1 != 0
	pos++
	sols, ok1 := uv()
	alg, ok2 := uv()
	dur, ok3 := uv()
	count, ok4 := uv()
	if !ok1 || !ok2 || !ok3 || !ok4 || count > uint64(len(body)) {
		return bad("stats header")
	}
	e.Stats = kbiplex.Stats{
		Solutions: int64(sols),
		Algorithm: kbiplex.Algorithm(alg),
		Duration:  time.Duration(dur),
	}
	e.Solutions = make([]kbiplex.Solution, 0, count)
	side := func() ([]int32, bool) {
		n, ok := uv()
		if !ok || n > uint64(len(body)) {
			return nil, false
		}
		out := make([]int32, n)
		for i := range out {
			v, ok := uv()
			if !ok {
				return nil, false
			}
			out[i] = int32(uint32(v))
		}
		return out, true
	}
	for i := uint64(0); i < count; i++ {
		l, ok := side()
		if !ok {
			return bad("solution left side")
		}
		r, ok := side()
		if !ok {
			return bad("solution right side")
		}
		e.Solutions = append(e.Solutions, kbiplex.Solution{L: l, R: r})
	}
	return kind, e, nil
}
