package kbiplex

import (
	"path/filepath"
	"testing"
)

// TestSpillDirMatchesInMemory checks that a disk-backed deduplication
// store produces exactly the in-memory enumeration output and actually
// spills run files.
func TestSpillDirMatchesInMemory(t *testing.T) {
	g := RandomBipartite(14, 14, 2.5, 11)
	want, _, err := EnumerateAll(g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 10 {
		t.Fatalf("test graph too small: %d MBPs", len(want))
	}
	for _, alg := range []Algorithm{ITraversal, BTraversal} {
		dir := t.TempDir()
		got, _, err := EnumerateAll(g, Options{K: 1, Algorithm: alg, SpillDir: dir})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v with SpillDir: %d MBPs, want %d", alg, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%v with SpillDir: mismatch at %d", alg, i)
			}
		}
	}
}

func TestSpillDirErrors(t *testing.T) {
	g := RandomBipartite(4, 4, 1, 1)
	if _, _, err := EnumerateAll(g, Options{K: 1, Algorithm: IMB, SpillDir: t.TempDir()}); err == nil {
		t.Fatal("SpillDir accepted for iMB")
	}
	missing := filepath.Join(t.TempDir(), "nope")
	if _, _, err := EnumerateAll(g, Options{K: 1, SpillDir: missing}); err == nil {
		t.Fatal("missing SpillDir accepted")
	}
}
