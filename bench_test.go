package kbiplex

// One testing.B benchmark per table/figure of the paper's evaluation,
// each delegating to the experiment runner in internal/exp at a reduced
// scale (benchmarks must finish in seconds; use cmd/experiments for the
// full laptop-scale reproduction and EXPERIMENTS.md for recorded
// results). Micro-benchmarks of the hot paths follow at the end.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
)

// benchConfig keeps every figure runner in the seconds range so the
// default -benchtime works. The per-run timeout defaults to 300ms but is
// overridable via KBIPLEX_BENCH_TIMEOUT (any time.Duration string, e.g.
// "2s"): slow CI runners time runs out mid-figure at 300ms, which skews
// the figures toward their INF branches and flakes delay assertions.
func benchConfig() exp.Config {
	timeout := 300 * time.Millisecond
	if v := os.Getenv("KBIPLEX_BENCH_TIMEOUT"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			panic(fmt.Sprintf("invalid KBIPLEX_BENCH_TIMEOUT %q: want a positive Go duration like 2s", v))
		}
		timeout = d
	}
	return exp.Config{MaxEdges: 1200, Timeout: timeout, FirstN: 50}
}

func BenchmarkTable1Stats(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Table1Stats(cfg)
	}
}

func BenchmarkFig3SolutionGraphs(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig3(cfg)
	}
}

func BenchmarkFig7aAcrossDatasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig7a(cfg)
	}
}

func BenchmarkFig7bVaryK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig7bc(cfg, "Writer")
	}
}

func BenchmarkFig7dVaryN(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig7de(cfg, "Writer")
	}
}

func BenchmarkFig8Delay(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig8a(cfg)
	}
}

func BenchmarkFig8bDelayVaryK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig8b(cfg)
	}
}

func BenchmarkFig9aScale(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig9a(cfg)
	}
}

func BenchmarkFig9bDensity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig9b(cfg)
	}
}

func BenchmarkFig10LargeMBP(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig10(cfg, "Writer", []int{5, 6})
	}
}

func BenchmarkFig11Ablation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig11ab(cfg)
	}
}

func BenchmarkFig11cdAblationVaryK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig11cd(cfg)
	}
}

func BenchmarkFig12EnumAlmostSat(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig12(cfg, "Writer")
	}
}

func BenchmarkFig13Fraud(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.Fig13(cfg)
	}
}

// ---- extension experiments (beyond the paper's evaluation) ----

func BenchmarkExtParallelScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.ExtParallel(cfg)
	}
}

func BenchmarkExtDistCluster(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.ExtDist(cfg)
	}
}

func BenchmarkExtStoreAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.ExtStore(cfg)
	}
}

func BenchmarkExtLargestSearch(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.ExtLargest(cfg)
	}
}

// ---- micro-benchmarks of the library's hot paths ----

// BenchmarkEnumerateITraversal measures end-to-end iTraversal throughput
// (solutions/op reported via custom metric).
func BenchmarkEnumerateITraversal(b *testing.B) {
	g := gen.ER(300, 300, 3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		st, err := Enumerate(g, Options{K: 1, MaxResults: 500}, nil)
		if err != nil {
			b.Fatal(err)
		}
		total += st.Solutions
	}
	b.ReportMetric(float64(total)/float64(b.N), "solutions/op")
}

func BenchmarkEnumerateBTraversal(b *testing.B) {
	g := gen.ER(60, 60, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{K: 1, Algorithm: BTraversal, MaxResults: 100}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateIMB(b *testing.B) {
	g := gen.ER(25, 25, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{K: 1, Algorithm: IMB, MaxResults: 100}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateInflation(b *testing.B) {
	g := gen.ER(25, 25, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{K: 1, Algorithm: Inflation, MaxResults: 100}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeMBPWithCore measures the Section 5 path: thresholds plus
// (θ-k)-core preprocessing.
func BenchmarkLargeMBPWithCore(b *testing.B) {
	base := gen.ER(2000, 500, 1.5, 3)
	g, _, _ := gen.PlantBlock(base, 12, 15, 1, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, Options{K: 1, MinLeft: 5, MinRight: 5}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumAlmostSatVariants isolates the Section 4 procedure on one
// representative almost-satisfying graph.
func BenchmarkEnumAlmostSatVariants(b *testing.B) {
	g := gen.ER(200, 200, 4, 7)
	sols := mustFirst(b, g, 5)
	h := sols[len(sols)-1]
	var v int32 = -1
	for w := int32(0); w < int32(g.NumLeft()); w++ {
		if !containsInt32(h.L, w) {
			v = w
			break
		}
	}
	if v < 0 {
		b.Skip("no vertex to add")
	}
	for _, variant := range []core.EASVariant{core.EASL2R2, core.EASL1R1, core.EASInflation} {
		b.Run(variant.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.EnumAlmostSatOnce(g, h.L, h.R, v, 1, variant, nil)
			}
		})
	}
}

func mustFirst(b *testing.B, g *Graph, n int) []Solution {
	b.Helper()
	var out []Solution
	if _, err := Enumerate(g, Options{K: 1, MaxResults: n}, func(s Solution) bool {
		out = append(out, s)
		return true
	}); err != nil {
		b.Fatal(err)
	}
	if len(out) == 0 {
		b.Skip("no solutions")
	}
	return out
}

func containsInt32(a []int32, x int32) bool {
	for _, y := range a {
		if y == x {
			return true
		}
	}
	return false
}

// BenchmarkEnumerateParallelSpeedup compares 1 vs GOMAXPROCS workers on a
// graph with enough independent subtrees to parallelize.
func BenchmarkEnumerateParallelSpeedup(b *testing.B) {
	g := gen.ER(400, 400, 3, 13)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EnumerateParallel(g, Options{K: 1, MaxResults: 2000}, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDedupStore is the ablation for the solution-store design
// choice (DESIGN.md): the paper's B-tree versus a Go map, over
// realistic solution-key workloads.
func BenchmarkDedupStore(b *testing.B) {
	keys := make([][]byte, 0, 3000)
	g := gen.ER(150, 150, 3, 2)
	if _, err := Enumerate(g, Options{K: 1, MaxResults: 3000}, func(s Solution) bool {
		keys = append(keys, s.Key())
		return true
	}); err != nil {
		b.Fatal(err)
	}
	if len(keys) == 0 {
		b.Skip("no keys")
	}
	b.Run("btree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var tr btree.Tree
			for _, k := range keys {
				tr.Insert(k)
				tr.Has(k)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := map[string]struct{}{}
			for _, k := range keys {
				m[string(k)] = struct{}{}
				_, _ = m[string(k)]
			}
		}
	})
}
