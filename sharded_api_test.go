package kbiplex

import (
	"context"
	"sync"
	"testing"

	"repro/internal/biplex"
	"repro/internal/exec"
)

// TestEnumerateShardedMatchesSequential checks the sharded funnels —
// package-level and engine — produce exactly the sequential solution
// set, for plain and large-MBP (core-reduced) queries and several shard
// counts.
func TestEnumerateShardedMatchesSequential(t *testing.T) {
	g := RandomBipartite(24, 24, 2, 15)
	e := NewEngine(g, EngineConfig{})
	for _, opts := range []Options{
		{K: 1},
		{K: 1, Shards: 1},
		{K: 1, Shards: 4},
		{K: 1, MinLeft: 3, MinRight: 3, Shards: 3},
	} {
		want, _, err := EnumerateAll(g, Options{K: opts.K, MinLeft: opts.MinLeft, MinRight: opts.MinRight})
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func(func(Solution) bool) (Stats, error){
			"package": func(emit func(Solution) bool) (Stats, error) {
				return EnumerateShardedCtx(context.Background(), g, opts, emit)
			},
			"engine": func(emit func(Solution) bool) (Stats, error) {
				return e.EnumerateSharded(context.Background(), opts, emit)
			},
		} {
			var mu sync.Mutex
			var got []Solution
			st, err := run(func(s Solution) bool {
				mu.Lock()
				got = append(got, s)
				mu.Unlock()
				return true
			})
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if st.Algorithm != ITraversal {
				t.Fatalf("%s %+v: stats algorithm %v", name, opts, st.Algorithm)
			}
			if int(st.Solutions) != len(want) || len(got) != len(want) {
				t.Fatalf("%s %+v: %d solutions, want %d", name, opts, st.Solutions, len(want))
			}
			biplex.SortPairs(got)
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%s %+v: solution sets differ at %d", name, opts, i)
				}
			}
		}
	}
}

// TestShardedCancellation checks ctx cancellation surfaces as the
// context's error from the sharded funnel.
func TestShardedCancellation(t *testing.T) {
	g := RandomBipartite(30, 30, 2.5, 7)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := EnumerateShardedCtx(ctx, g, Options{K: 1, Shards: 2}, func(Solution) bool {
		n++
		if n == 2 {
			cancel()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("cancelled sharded run returned %v", err)
	}
}

// TestShardedOptionsValidation checks the Shards field's rules at the
// Options layer: negative clamps to zero, and a positive count demands
// the ITraversal algorithm.
func TestShardedOptionsValidation(t *testing.T) {
	if err := (Options{K: 1, Shards: -3}).Validate(); err != nil {
		t.Fatalf("negative Shards should clamp, got %v", err)
	}
	if err := (Options{K: 1, Shards: 2, Algorithm: BTraversal}).Validate(); err == nil {
		t.Fatal("Shards with bTraversal accepted")
	}
	g := RandomBipartite(6, 6, 1, 1)
	if _, err := EnumerateShardedCtx(context.Background(), g, Options{K: 1, Algorithm: IMB}, nil); err == nil {
		t.Fatal("sharded iMB run accepted")
	}
	if st, err := EnumerateShardedCtx(context.Background(), g, Options{}, nil); err == nil {
		t.Fatal("K=0 accepted")
	} else if st.Algorithm != ITraversal {
		t.Fatalf("error stats algorithm %v", st.Algorithm)
	}
}

// TestParallelStatsAlgorithmStamped is the regression test for the
// parallel funnels returning Stats{} with an unstamped Algorithm on
// their error paths, where the sequential funnel stamps it.
func TestParallelStatsAlgorithmStamped(t *testing.T) {
	g := RandomBipartite(6, 6, 1, 1)
	e := NewEngine(g, EngineConfig{})
	ctx := context.Background()

	// Normalize failure (K=0): the requested algorithm must be echoed.
	for name, run := range map[string]func(Options) (Stats, error){
		"package": func(o Options) (Stats, error) { return EnumerateParallelCtx(ctx, g, o, 2, nil) },
		"engine":  func(o Options) (Stats, error) { return e.EnumerateParallel(ctx, o, 2, nil) },
	} {
		st, err := run(Options{Algorithm: IMB})
		if err == nil {
			t.Fatalf("%s: K=0 accepted", name)
		}
		if st.Algorithm != IMB {
			t.Fatalf("%s: normalize-error stats carry algorithm %v, want %v (as Enumerate does)", name, st.Algorithm, IMB)
		}
		// Unsupported-algorithm failure: same contract.
		st, err = run(Options{K: 1, Algorithm: Inflation})
		if err == nil {
			t.Fatalf("%s: parallel Inflation accepted", name)
		}
		if st.Algorithm != Inflation {
			t.Fatalf("%s: algorithm-error stats carry %v, want %v", name, st.Algorithm, Inflation)
		}
	}
}

// TestEngineReleaseRacesInFlightQueries drives Release against live
// parallel and sharded queries; under -race this is the regression net
// for the documented guarantee that in-flight queries keep the cached
// views they hold while Release drops the cache underneath them.
func TestEngineReleaseRacesInFlightQueries(t *testing.T) {
	g := RandomBipartite(26, 26, 2, 11)
	e := NewEngine(g, EngineConfig{})
	opts := Options{K: 1, MinLeft: 2, MinRight: 2} // engages the core cache
	want, _, err := EnumerateAll(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Release()
			}
		}
	}()

	for i := 0; i < 4; i++ {
		for name, run := range map[string]func(func(Solution) bool) (Stats, error){
			"parallel": func(emit func(Solution) bool) (Stats, error) {
				return e.EnumerateParallel(context.Background(), opts, 2, emit)
			},
			"sharded": func(emit func(Solution) bool) (Stats, error) {
				o := opts
				o.Shards = 2
				return e.EnumerateSharded(context.Background(), o, emit)
			},
		} {
			st, err := run(nil)
			if err != nil {
				t.Errorf("%s under Release: %v", name, err)
			}
			if int(st.Solutions) != len(want) {
				t.Errorf("%s under Release: %d solutions, want %d", name, st.Solutions, len(want))
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestExecAlgorithmAlignment pins the value-for-value correspondence
// between the public Algorithm enum and the planner's, which
// Options.execOptions converts by cast.
func TestExecAlgorithmAlignment(t *testing.T) {
	for _, a := range []Algorithm{ITraversal, BTraversal, IMB, Inflation} {
		if got := exec.Algorithm(a).String(); got != a.String() {
			t.Fatalf("exec.Algorithm(%d) = %s, kbiplex says %s", int(a), got, a.String())
		}
	}
}
